(** Datagram wire transport: real packets over real sockets.

    The other half of the transport matrix (DESIGN.md §2f): where
    {!Resets_core.Transport.of_link} puts the protocol on the
    deterministic simulated link, this module puts the very same
    protocol on a nonblocking UDP or UNIX-datagram socket. One ESP
    packet per datagram — ESP is datagram-shaped, so the framing is
    the trivial one.

    Datagram semantics match the paper's channel assumptions for free:
    the network may lose, reorder or duplicate, and the protocol is
    built to converge anyway. A send the kernel refuses (dead peer:
    [ECONNREFUSED]/[ENOENT]; full buffers: [EAGAIN]) is counted and
    treated as loss, never raised — a sender must keep sending while
    its peer is mid-reset, that being the whole experiment.

    Single-owner discipline: one domain owns a socket ([drain]/[send]
    are not thread-safe). A multi-worker daemon gives the socket to
    its receive loop and fans frames out by SPI (see {!Daemon}). *)

(** A wire address. [Udp] for cross-host runs, [Unix_dgram] for local
    two-process harnesses (no port allocation, no firewall). *)
type addr =
  | Udp of string * int  (** host (dotted quad or name), port *)
  | Unix_dgram of string  (** filesystem socket path *)

val addr_of_string : string -> (addr, string) result
(** ["udp:HOST:PORT"] or ["unix:PATH"]. *)

val addr_to_string : addr -> string

type t

val create : ?bind:addr -> ?peer:addr -> unit -> t
(** A nonblocking datagram socket. [bind] makes it receivable (the
    daemon's receive side; a UNIX-dgram path is unlinked first if a
    stale one exists). [peer] is the default destination for
    {!send_frame}. At least one must be given.
    @raise Invalid_argument when both are missing or address families
    mix. *)

val send_frame : t -> string -> bool
(** Send one datagram to [peer]. [false] (and a [tx_errors] tick) when
    the kernel refused it — dead peer, full buffers — which the caller
    treats as channel loss. @raise Invalid_argument without a peer. *)

val set_frame_handler : t -> (string -> unit) -> unit
(** Install the handler {!drain} feeds. Frames drained with no handler
    installed are dropped (counted in {!rx_dropped}). *)

val drain : t -> int
(** Batched receive: pull every datagram currently queued (until
    [EAGAIN]), feed each to the frame handler, return how many. *)

val wait_readable : t -> timeout:float -> bool
(** Block (select) until the socket is readable or [timeout] seconds
    pass — the daemon's idle hook. *)

val transport : t -> Resets_core.Transport.t
(** The endpoints' view: {!Resets_core.Transport.send} serialises just
    the ESP bytes ([Packet.wire]); every frame {!drain} hands back
    comes up as [Packet.fresh] — a real wire cannot mark provenance;
    telling replays apart is the replay window's job. *)

val tx_frames : t -> int
val tx_errors : t -> int
val rx_frames : t -> int

val rx_dropped : t -> int
(** Frames drained while no handler was installed. *)

val close : t -> unit
(** Close the socket; a bound UNIX-dgram path is unlinked. *)
