(** Datagram wire transport: real packets over real sockets, batched.

    The other half of the transport matrix (DESIGN.md §2f): where
    {!Resets_core.Transport.of_link} puts the protocol on the
    deterministic simulated link, this module puts the very same
    protocol on a nonblocking UDP or UNIX-datagram socket. One ESP
    packet per datagram — ESP is datagram-shaped, so the framing is
    the trivial one.

    The datapath is batched and allocation-light ({!Batch_io}):
    receives pull up to [batch] datagrams per syscall into a pooled
    frame arena and hand each out as a {!Resets_util.Slice.t} (the
    string handler remains as a copying compatibility path); sends
    stage frames in a tx pool flushed by one batched syscall when full
    — and, in the daemon, at every engine-tick boundary
    ({!Resets_sim.Engine.run_clocked}'s [tick] hook) so a batch never
    outlives a tick.

    Datagram semantics match the paper's channel assumptions for free:
    the network may lose, reorder or duplicate, and the protocol is
    built to converge anyway. A send the kernel refuses (dead peer:
    [ECONNREFUSED]/[ENOENT]; full buffers: [EAGAIN]) is counted and
    treated as loss, never raised — a sender must keep sending while
    its peer is mid-reset, that being the whole experiment. The same
    discipline extends to batches: a partial [sendmmsg] completion
    counts the unsent tail in [tx_errors] and never retries.

    Single-owner discipline: one domain owns a socket ([drain]/[send]
    are not thread-safe). A multi-worker daemon gives the socket to
    its receive loop and fans frames out by SPI (see {!Daemon}). *)

(** A wire address. [Udp] for cross-host runs, [Unix_dgram] for local
    two-process harnesses (no port allocation, no firewall). *)
type addr =
  | Udp of string * int
      (** host (dotted quad, bare IPv6 literal, or name), port *)
  | Unix_dgram of string  (** filesystem socket path *)

val addr_of_string : string -> (addr, string) result
(** ["udp:HOST:PORT"], ["udp:\[V6ADDR\]:PORT"] (bracketed IPv6
    literal), or ["unix:PATH"]. An empty host ([udp::4500]) and an
    unbracketed IPv6 literal are rejected with a pointed error. *)

val addr_to_string : addr -> string
(** Inverse of {!addr_of_string}; IPv6 literals come back bracketed. *)

type t

val create :
  ?bind:addr ->
  ?peer:addr ->
  ?batch:int ->
  ?rcvbuf:int ->
  ?sndbuf:int ->
  unit ->
  t
(** A nonblocking datagram socket. [bind] makes it receivable (the
    daemon's receive side; a UNIX-dgram path is unlinked first if a
    stale one exists). [peer] is the default destination for sends.
    At least one must be given.

    [batch] (default {!Batch_io.default_batch} = 32) sizes both the rx
    arena and the tx pool; [batch = 1] degenerates to exactly the
    unbatched one-syscall-per-frame transport, including synchronous
    per-send error reporting. [rcvbuf]/[sndbuf] request explicit
    kernel socket buffer sizes; the {e effective} values (as granted —
    kernels clamp and round) are readable via {!rcvbuf_effective} /
    {!sndbuf_effective} and reported in the daemon's startup
    heartbeat.

    @raise Invalid_argument when both addresses are missing, address
    families mix, or [batch] is outside [\[1, Batch_io.max_batch\]]. *)

val send_frame : t -> string -> bool
(** Stage one datagram for [peer]; the batch is flushed by one
    [sendmmsg]-style syscall when full (or explicitly via {!flush}).
    [false] (and a [tx_errors] tick) when the frame is already known
    lost — oversized, or it sat in the unsent tail of the flush its
    enqueue triggered. With [batch = 1] this is exactly the old
    synchronous send. @raise Invalid_argument without a peer. *)

val send_slice : t -> Resets_util.Slice.t -> bool
(** {!send_frame} for a frame viewed in a borrowed buffer — blits
    straight into the tx pool, no string materialized. *)

val flush : t -> int
(** Send every staged frame now; returns how many the kernel accepted
    (the rest are counted in [tx_errors] — loss, never retried). The
    daemon calls this at every engine-tick boundary. No-op returning 0
    on an empty queue. @raise Invalid_argument without a peer. *)

val set_frame_handler : t -> (string -> unit) -> unit
(** Install a copying (string) handler for {!drain} to feed. Replaces
    any slice handler — one handler is active at a time. Frames
    drained with no handler installed are dropped (counted in
    {!rx_dropped}). *)

val set_slice_handler : t -> (Resets_util.Slice.t -> unit) -> unit
(** Install a zero-copy handler: each frame arrives as a view into the
    rx arena, valid only during the call (the slot is reused by the
    next receive batch). Replaces any string handler. *)

val drain : t -> int
(** Batched receive: pull every datagram currently queued (whole
    batches per syscall, until the socket would block), feed each to
    the installed handler, return how many. A zero-length datagram is
    a real datagram — counted in [rx_frames] and delivered (the codec
    rejects it as a short frame); it does {e not} end the poll. *)

val wait_readable : t -> timeout:float -> bool
(** Block (select) until the socket is readable or [timeout] seconds
    pass — the daemon's idle hook. *)

val transport : t -> Resets_core.Transport.t
(** The endpoints' view, both faces wired natively:
    {!Resets_core.Transport.send} stages the ESP bytes
    ([Packet.wire]); {!Resets_core.Transport.send_slice} blits without
    materializing; {!Resets_core.Transport.set_recv_slice} receives
    straight out of the arena. Every received frame is fresh — a real
    wire cannot mark provenance; telling replays apart is the replay
    window's job. *)

val tx_frames : t -> int
(** Frames the kernel accepted. *)

val tx_errors : t -> int
(** Frames refused or abandoned in a partial flush: always
    [tx_frames + tx_errors] = frames attempted. *)

val rx_frames : t -> int
val rx_dropped : t -> int
(** Frames drained while no handler was installed, plus any the kernel
    truncated. *)

(** {1 Wire-pressure observability}

    Fed into the daemon heartbeat so convergence percentiles can be
    correlated with how hard the wire was pushing (ROADMAP item 4). *)

val batch : t -> int
val tx_queued : t -> int
(** Frames currently staged awaiting {!flush}. *)

val tx_flushes : t -> int
(** Completed flushes (including auto-flushes on a full pool). *)

val tx_queue_hwm : t -> int
(** High-water mark of tx pool occupancy. *)

val rx_batches : t -> int
(** Non-empty receive batches drained. *)

val rx_batch_max : t -> int
val rx_batch_percentile : t -> float -> int
(** [rx_batch_percentile t 0.5] / [... 0.99]: batch-size percentiles
    over all non-empty receive batches; 0 before any arrive. *)

val rcvbuf_effective : t -> int
(** [SO_RCVBUF] as the kernel granted it. *)

val sndbuf_effective : t -> int

val close : t -> unit
(** Flush staged sends (best effort), close the socket; a bound
    UNIX-dgram path is unlinked. *)
