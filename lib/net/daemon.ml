open Resets_util
open Resets_sim
open Resets_persist
open Resets_ipsec
open Resets_core

module Batch_io = Resets_net_stubs.Batch_io

type role = Send | Recv

(* How this process treats persisted sequence state across a restart —
   the recovery-discipline axis of the E17 matrix. *)
type discipline =
  | Per_sa  (** one store key per SA, recover each independently *)
  | Coalesced  (** one snapshot file per worker, all SAs together *)
  | Reestablish  (** ignore stored state; establish a fresh space *)

(* Background traffic shape during the run — the churn axis. The wire
   daemon has no IKE, so "rekey storm" is modelled at the wire level:
   the bursty on/off source that motivates message-counted SAVE
   intervals in the paper. *)
type churn = Steady | Storm | Mixed

type config = {
  role : role;
  bind : Transport_udp.addr option;
  peer : Transport_udp.addr option;
  secret : string;
  spi_base : int;
  sas : int;
  k : int;
  adaptive : bool;
  window : int;
  rate_pps : float;
  duration : float;
  store_dir : string;
  stats_path : string option;
  json_path : string option;
  workers : int;
  expect_recovery : bool;
  heartbeat : float;
  batch : int;
  rcvbuf : int option;
  sndbuf : int option;
  discipline : discipline;
  churn : churn;
  impair : Impair.spec;  (** send-path wire impairment plan *)
  impair_seed : int;
  store_faults : Faults.spec;  (** file-store fault plan *)
  fault_seed : int;
  handle_signals : bool;
      (** install a SIGTERM handler: stop early, final blocking SAVE
          per SA, terminal heartbeat *)
}

let default =
  {
    role = Recv;
    bind = Some (Transport_udp.Unix_dgram "/tmp/resets.sock");
    peer = None;
    secret = "wire-shared-secret";
    spi_base = 0x5000;
    sas = 1;
    k = 8;
    adaptive = false;
    window = 64;
    rate_pps = 200.;
    duration = 3.;
    store_dir = "/tmp/resets-store";
    stats_path = None;
    json_path = None;
    workers = 1;
    expect_recovery = false;
    heartbeat = 0.25;
    batch = Batch_io.default_batch;
    rcvbuf = None;
    sndbuf = None;
    discipline = Per_sa;
    churn = Steady;
    impair = Impair.none;
    impair_seed = 1;
    store_faults = Faults.none;
    fault_seed = 1;
    handle_signals = false;
  }

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* A SIGTERM arriving mid-syscall surfaces as EINTR; the interrupted
   wait is treated as "nothing happened" so the loop re-checks its stop
   flag instead of dying. *)
let no_eintr ~default f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> default

(* The SAVE-interval policy every SA of this daemon runs under.
   [--k auto] (adaptive) re-derives K online from the wall-clock SAVE
   latency the file store actually exhibits. *)
let policy_mode cfg =
  if cfg.adaptive then K_policy.adaptive ~initial_k:cfg.k ()
  else K_policy.static cfg.k

(* Wrap a store so every completed save reports its wall-clock latency:
   into the per-worker sample (heartbeat percentiles) and, when
   adaptive, into the SA's policy. File-store saves are synchronous, so
   the callback runs before [save] returns and the measured latency is
   the real fsync+rename cost. *)
let timed_store ~sample ~policy store =
  {
    store with
    Store.save =
      (fun ~key ~value ~on_error ~on_complete ->
        let t0 = now_ns () in
        store.Store.save ~key ~value ~on_error ~on_complete:(fun () ->
            let dt = Int64.sub (now_ns ()) t0 in
            let dt = if Int64.compare dt 0L < 0 then 0L else dt in
            Stats.Sample.add sample (Int64.to_float dt);
            (match policy with
            | Some p -> K_policy.observe_save_latency p (Time.of_ns dt)
            | None -> ());
            on_complete ()));
  }

(* ------------------------------------------------------------------ *)
(* Per-SA statistics, snapshotted by workers and aggregated by the
   main domain for heartbeats, the final report and the gate.          *)

type sa_stat = {
  spi : int;
  recovered : bool;
  recovered_from : int;  (** stored value found at startup (0 if none) *)
  sent : int;
  next_seq : int;
  delivered : int;
  min_seq : int;  (** lowest delivered seq this incarnation; 0 if none *)
  max_seq : int;
  fresh_rejected : int;
  lost : int;
      (** fresh messages rejected with no copy ever delivered — the
          paper's convergence cost. [fresh_rejected] also counts
          window rejections of wire-duplicated frames whose original
          got through, so only [lost] is bounded by 2k. *)
  dups : int;
  bad_icv : int;
  edge : int;
  k_now : int;  (** currently effective K (static: the configured K) *)
}

let zero_stat spi =
  {
    spi;
    recovered = false;
    recovered_from = 0;
    sent = 0;
    next_seq = 0;
    delivered = 0;
    min_seq = 0;
    max_seq = 0;
    fresh_rejected = 0;
    lost = 0;
    dups = 0;
    bad_icv = 0;
    edge = 0;
    k_now = 0;
  }

let json_of_stat s =
  Json.Obj
    [
      ("spi", Json.Int s.spi);
      ("recovered", Json.Bool s.recovered);
      ("recovered_from", Json.Int s.recovered_from);
      ("sent", Json.Int s.sent);
      ("next_seq", Json.Int s.next_seq);
      ("delivered", Json.Int s.delivered);
      ("min_seq", Json.Int s.min_seq);
      ("max_seq", Json.Int s.max_seq);
      ("fresh_rejected", Json.Int s.fresh_rejected);
      ("lost", Json.Int s.lost);
      ("dups", Json.Int s.dups);
      ("bad_icv", Json.Int s.bad_icv);
      ("edge", Json.Int s.edge);
      ("k_now", Json.Int s.k_now);
    ]

(* The previous incarnation's last heartbeat: spi -> (max_seq,
   delivered). Read before this incarnation appends anything. *)
let read_prev_stats path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let last = ref None in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then last := Some line
       done
     with End_of_file -> ());
    close_in ic;
    match !last with
    | None -> []
    | Some line -> (
      match Json.parse line with
      | Error _ -> []
      | Ok j -> (
        match Option.bind (Json.member "sas" j) Json.as_list with
        | None -> []
        | Some sas ->
          List.filter_map
            (fun sa ->
              match
                ( Option.bind (Json.member "spi" sa) Json.as_int,
                  Option.bind (Json.member "max_seq" sa) Json.as_int,
                  Option.bind (Json.member "delivered" sa) Json.as_int )
              with
              | Some spi, Some max_seq, Some delivered ->
                Some (spi, (max_seq, delivered))
              | _ -> None)
            sas))
  end

let append_line path line =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (line ^ "\n");
  close_out oc

(* Every heartbeat carries the writer's pid and an absolute wall-clock
   stamp: a supervisor reading the JSONL can tell incarnations apart by
   pid alone and measure restart-to-convergence times without sharing a
   clock with the daemon. [event] marks the terminal line a cleanly
   exiting daemon appends (["shutdown"], with the stop reason); its
   absence at exit is how a crash looks. *)
let append_heartbeat ?event path ~role ~elapsed_ns ~shards ~wire stats =
  append_line path
    (Json.to_string
       (Json.Obj
          ((match event with
           | Some (name, reason) ->
             [
               ("event", Json.String name); ("reason", Json.String reason);
             ]
           | None -> [])
          @ [
              ("pid", Json.Int (Unix.getpid ()));
              ("ts_ns", Json.Int (Int64.to_int (now_ns ())));
              ("elapsed_ns", Json.Int elapsed_ns);
              ( "role",
                Json.String (match role with Send -> "send" | Recv -> "recv")
              );
              ("sas", Json.List (List.map json_of_stat (Array.to_list stats)));
              (* per-shard (worker) wall-clock SAVE-latency percentiles *)
              ("save_latency_ns", Json.List shards);
              (* wire pressure: batch-fill percentiles, flush counts,
                 tx-pool high-water mark (DESIGN.md §2f) *)
              ("wire", wire);
            ])))

(* The startup heartbeat carries what a post-mortem needs to interpret
   the run's wire numbers: the configured batch and the socket-buffer
   sizes the kernel actually granted (it clamps and rounds requests). *)
let append_startup path ~role ~batch ~rcvbuf_effective ~sndbuf_effective =
  append_line path
    (Json.to_string
       (Json.Obj
          [
            ("event", Json.String "startup");
            ("pid", Json.Int (Unix.getpid ()));
            ("ts_ns", Json.Int (Int64.to_int (now_ns ())));
            ( "role",
              Json.String (match role with Send -> "send" | Recv -> "recv") );
            ("batch", Json.Int batch);
            ("rcvbuf_effective", Json.Int rcvbuf_effective);
            ("sndbuf_effective", Json.Int sndbuf_effective);
          ]))

(* ------------------------------------------------------------------ *)
(* Worker mailbox: the main domain pushes raw frames in (receive role)
   and reads stat snapshots out; the worker does the reverse. The
   mutex covers exactly these three fields.                            *)

type save_lat_snapshot = {
  lat_count : int;
  lat_p50_ns : float;
  lat_p99_ns : float;
  lat_max_ns : float;
}

let no_latencies = { lat_count = 0; lat_p50_ns = 0.; lat_p99_ns = 0.; lat_max_ns = 0. }

let snapshot_latencies sample =
  let n = Stats.Sample.count sample in
  if n = 0 then no_latencies
  else
    {
      lat_count = n;
      lat_p50_ns = Stats.Sample.percentile sample 50.;
      lat_p99_ns = Stats.Sample.percentile sample 99.;
      lat_max_ns = Stats.Sample.percentile sample 100.;
    }

let json_of_latencies ~worker l =
  Json.Obj
    [
      ("worker", Json.Int worker);
      ("count", Json.Int l.lat_count);
      ("p50", Json.Float l.lat_p50_ns);
      ("p99", Json.Float l.lat_p99_ns);
      ("max", Json.Float l.lat_max_ns);
    ]

(* A send worker's view of its private socket, snapshotted under the
   mailbox mutex alongside the SA stats. *)
type wire_snapshot = {
  w_tx : int;
  w_tx_errors : int;
  w_tx_flushes : int;
  w_tx_queue_hwm : int;
  w_rcvbuf : int;
  w_sndbuf : int;
}

let no_wire =
  {
    w_tx = 0;
    w_tx_errors = 0;
    w_tx_flushes = 0;
    w_tx_queue_hwm = 0;
    w_rcvbuf = 0;
    w_sndbuf = 0;
  }

let snapshot_wire sock =
  {
    w_tx = Transport_udp.tx_frames sock;
    w_tx_errors = Transport_udp.tx_errors sock;
    w_tx_flushes = Transport_udp.tx_flushes sock;
    w_tx_queue_hwm = Transport_udp.tx_queue_hwm sock;
    w_rcvbuf = Transport_udp.rcvbuf_effective sock;
    w_sndbuf = Transport_udp.sndbuf_effective sock;
  }

type mailbox = {
  m : Mutex.t;
  mutable frames : string list; (* newest first *)
  mutable stop : bool;
  mutable graceful : bool; (* stop came from SIGTERM: flush state *)
  mutable snapshot : sa_stat array;
  mutable save_latencies : save_lat_snapshot;
  mutable wire : wire_snapshot;
}

let make_mailbox n =
  {
    m = Mutex.create ();
    frames = [];
    stop = false;
    graceful = false;
    snapshot = Array.init n (fun _ -> zero_stat 0);
    save_latencies = no_latencies;
    wire = no_wire;
  }

let shard_indices cfg w =
  List.filter (fun i -> i mod cfg.workers = w) (List.init cfg.sas Fun.id)

let derive_sa cfg i =
  let spi = Int32.of_int (cfg.spi_base + i) in
  Sa.create (Sa.derive_params ~window_width:cfg.window ~spi ~secret:cfg.secret ())

let key_of cfg role i =
  Printf.sprintf "spi-%d-%s" (cfg.spi_base + i)
    (match role with Send -> "seq" | Recv -> "edge")

(* The worker's persistence backend, shaped by the recovery
   discipline: per-SA file-per-key ([Per_sa], [Reestablish]) or one
   snapshot file per worker holding every SA together ([Coalesced]).
   [Reestablish] additionally blinds the startup fetch — stored state
   is ignored, the SA establishes a fresh sequence space. A store-fault
   plan (keyed by worker index, so the pattern is independent of how
   the sharding interleaves) makes the backend misbehave
   deterministically. *)
let worker_store cfg ~role w =
  let faults =
    if Faults.is_none cfg.store_faults then None
    else
      Some
        (Faults.create ~spec:cfg.store_faults
           ~prng:(Prng.keyed ~seed:cfg.fault_seed ~stream:w))
  in
  match cfg.discipline with
  | Coalesced ->
    let name =
      Printf.sprintf "%s-w%d" (match role with Send -> "send" | Recv -> "recv") w
    in
    let snap = File_store.Snapshot.load ?faults ~dir:cfg.store_dir ~name () in
    ( File_store.Snapshot.store snap,
      fun ~key -> File_store.Snapshot.fetch snap ~key )
  | Per_sa | Reestablish ->
    let fs = File_store.create ~dir:cfg.store_dir in
    Option.iter (File_store.set_faults fs) faults;
    let fetch ~key =
      match cfg.discipline with
      | Reestablish -> None
      | _ -> File_store.fetch fs ~key
    in
    (File_store.store fs, fetch)

(* Final blocking SAVE on graceful shutdown: the freshest counter must
   be durable before the process exits. Saves are synchronous on the
   file store; under an injected fault plan a save may fail, so retry a
   few times and finally fall back to [preload] (which bypasses the
   plan — flushing state at shutdown is establishment-grade). *)
let final_save (st : Store.t) ~key ~value =
  let ok = ref false in
  let attempts = ref 0 in
  while (not !ok) && !attempts < 3 do
    incr attempts;
    st.Store.save ~key ~value ~on_error:ignore ~on_complete:(fun () ->
        ok := true)
  done;
  if not !ok then st.Store.preload ~key ~value

(* The churn axis as a wire traffic shape, per SA: [Storm] is the
   on/off bursty source (4x the steady rate inside bursts, idle
   between, same long-run average), [Mixed] alternates shapes by SA
   index. PRNGs are keyed by global SA index so the shape an SA sees
   is independent of the sharding. *)
let traffic_of cfg i ~gap =
  let bursty () =
    let on_gap =
      Time.of_ns (Int64.of_float (Int64.to_float (Time.to_ns gap) /. 4.))
    in
    let burst = 32 in
    let off_ns =
      Int64.of_float
        (float_of_int burst
        *. (Int64.to_float (Time.to_ns gap) -. Int64.to_float (Time.to_ns on_gap))
        )
    in
    Resets_workload.Traffic.bursty ~on_gap ~off_duration:(Time.of_ns off_ns)
      ~burst_length:burst
      ~prng:(Prng.keyed ~seed:(cfg.impair_seed lxor 0x5747) ~stream:i)
  in
  match cfg.churn with
  | Steady -> Resets_workload.Traffic.constant ~gap
  | Storm -> bursty ()
  | Mixed ->
    if i mod 2 = 0 then Resets_workload.Traffic.constant ~gap else bursty ()

(* ------------------------------------------------------------------ *)
(* Receive worker: a shard of receivers on its own engine, fed frames
   through the mailbox by the main domain's socket loop.               *)

let recv_worker cfg (mb : mailbox) w =
  let indices = shard_indices cfg w in
  let engine = Engine.create () in
  let clock = Clock.of_ns_source now_ns in
  let base_store, fetch_prior = worker_store cfg ~role:Recv w in
  let save_lat = Stats.Sample.create () in
  let by_spi = Hashtbl.create 16 in
  let states =
    List.map
      (fun i ->
        let key = key_of cfg Recv i in
        let prior = fetch_prior ~key in
        let recovered = prior <> None in
        let metrics = Metrics.create () in
        let sa = derive_sa cfg i in
        let policy = K_policy.make (policy_mode cfg) in
        let store =
          timed_store ~sample:save_lat
            ~policy:(if cfg.adaptive then Some policy else None)
            base_store
        in
        let receiver =
          Receiver.create
            ~name:(Printf.sprintf "q%d" (cfg.spi_base + i))
            ~preload_store:(not recovered) ~sa ~metrics
            ~persistence:
              (Some
                 {
                   Receiver.store;
                   key;
                   policy;
                   robust = false;
                   wakeup_buffer = true;
                   retries = 3;
                 })
            engine
        in
        let min_seq = ref 0 in
        Receiver.on_deliver receiver (fun ~seq ~payload:_ ->
            if !min_seq = 0 || seq < !min_seq then min_seq := seq);
        if recovered then begin
          (* The paper's wakeup: FETCH, leap 2k, blocking SAVE — all
             synchronous against the file store, so the receiver is up
             before the first frame is read off the wire. *)
          Receiver.reset receiver;
          Receiver.wakeup receiver ()
        end;
        Hashtbl.replace by_spi (cfg.spi_base + i)
          (fun frame -> Receiver.on_packet receiver (Packet.fresh frame));
        ( i,
          receiver,
          metrics,
          min_seq,
          recovered,
          Option.value prior ~default:0,
          policy ))
      indices
  in
  let stat_of (i, receiver, (metrics : Metrics.t), min_seq, recovered, prior, policy)
      =
    {
      spi = cfg.spi_base + i;
      recovered;
      recovered_from = prior;
      sent = 0;
      next_seq = 0;
      delivered = metrics.Metrics.delivered;
      min_seq = !min_seq;
      max_seq = Metrics.max_delivered_seq metrics;
      fresh_rejected = metrics.Metrics.fresh_rejected;
      lost = metrics.Metrics.fresh_rejected_undelivered;
      dups = metrics.Metrics.duplicate_deliveries;
      bad_icv = metrics.Metrics.bad_icv;
      edge = Receiver.right_edge receiver;
      k_now = K_policy.current policy;
    }
  in
  let publish () =
    let snap = Array.of_list (List.map stat_of states) in
    Mutex.lock mb.m;
    mb.snapshot <- snap;
    mb.save_latencies <- snapshot_latencies save_lat;
    Mutex.unlock mb.m
  in
  publish ();
  let hb = Time.of_ns (Int64.of_float (cfg.heartbeat *. 1e9)) in
  let rec tick () =
    publish ();
    ignore (Engine.schedule_after engine ~after:hb tick)
  in
  ignore (Engine.schedule_after engine ~after:hb tick);
  let process frame =
    match Esp.spi_of_packet frame with
    | None -> ()
    | Some spi -> (
      match Hashtbl.find_opt by_spi (Int32.to_int spi) with
      | Some deliver -> deliver frame
      | None -> ())
  in
  let idle ~due:_ =
    Mutex.lock mb.m;
    let frames = mb.frames in
    mb.frames <- [];
    let stop = mb.stop in
    Mutex.unlock mb.m;
    List.iter process (List.rev frames);
    if stop then Engine.stop engine
    else if frames = [] then no_eintr ~default:() (fun () -> Unix.sleepf 0.002)
  in
  ignore
    (Engine.run_clocked ~clock ~idle ~until:(Time.of_sec cfg.duration) engine);
  (* Drain what the main domain pushed between our last pop and its
     own shutdown, so late frames still count. *)
  Mutex.lock mb.m;
  let rest = mb.frames in
  mb.frames <- [];
  let graceful = mb.graceful in
  Mutex.unlock mb.m;
  List.iter process (List.rev rest);
  (* Graceful (SIGTERM) stop: make every SA's freshest edge durable
     before exiting, so the next incarnation recovers from the true
     edge instead of the last periodic SAVE. *)
  if graceful then
    List.iter
      (fun (i, receiver, _, _, _, _, _) ->
        final_save base_store ~key:(key_of cfg Recv i)
          ~value:(Receiver.right_edge receiver))
      states;
  publish ()

(* ------------------------------------------------------------------ *)
(* Send worker: a shard of senders, each worker with a socket of its
   own (sockets are single-owner).                                     *)

let send_worker cfg (mb : mailbox) w =
  let indices = shard_indices cfg w in
  let engine = Engine.create () in
  let clock = Clock.of_ns_source now_ns in
  let base_store, fetch_prior = worker_store cfg ~role:Send w in
  let save_lat = Stats.Sample.create () in
  let sock =
    Transport_udp.create ?peer:cfg.peer ~batch:cfg.batch ?rcvbuf:cfg.rcvbuf
      ?sndbuf:cfg.sndbuf ()
  in
  let transport = Transport_udp.transport sock in
  let gap = Time.of_ns (Int64.of_float (1e9 /. cfg.rate_pps)) in
  let states =
    List.map
      (fun i ->
        let key = key_of cfg Send i in
        let prior = fetch_prior ~key in
        let recovered = prior <> None in
        let metrics = Metrics.create () in
        let sa = derive_sa cfg i in
        let policy = K_policy.make (policy_mode cfg) in
        let store =
          timed_store ~sample:save_lat
            ~policy:(if cfg.adaptive then Some policy else None)
            base_store
        in
        (* The impairment plan sits on the sender's view of the wire,
           one instance per SA keyed by global index: deterministic
           per stream, independent of the sharding. *)
        let sa_transport =
          if Impair.is_none cfg.impair then transport
          else
            Impair.wrap
              (Impair.create ~spec:cfg.impair
                 ~prng:(Prng.keyed ~seed:cfg.impair_seed ~stream:i))
              transport
        in
        let sender =
          Sender.create
            ~name:(Printf.sprintf "p%d" (cfg.spi_base + i))
            ~preload_store:(not recovered) ~sa ~transport:sa_transport
            ~traffic:(traffic_of cfg i ~gap)
            ~metrics
            ~persistence:
              (Some
                 {
                   Sender.store;
                   key;
                   policy;
                   trigger = Sender.On_count;
                   retries = 3;
                 })
            engine
        in
        if recovered then begin
          Sender.reset sender;
          Sender.wakeup sender ()
        end;
        Sender.start sender;
        (i, sender, metrics, recovered, Option.value prior ~default:0, policy))
      indices
  in
  let stat_of (i, sender, (metrics : Metrics.t), recovered, prior, policy) =
    {
      (zero_stat (cfg.spi_base + i)) with
      recovered;
      recovered_from = prior;
      sent = metrics.Metrics.sent;
      next_seq = Sender.next_seq sender;
      k_now = K_policy.current policy;
    }
  in
  let publish () =
    let snap = Array.of_list (List.map stat_of states) in
    Mutex.lock mb.m;
    mb.snapshot <- snap;
    mb.save_latencies <- snapshot_latencies save_lat;
    mb.wire <- snapshot_wire sock;
    Mutex.unlock mb.m
  in
  publish ();
  let hb = Time.of_ns (Int64.of_float (cfg.heartbeat *. 1e9)) in
  let rec tick () =
    publish ();
    ignore (Engine.schedule_after engine ~after:hb tick)
  in
  ignore (Engine.schedule_after engine ~after:hb tick);
  let idle ~due =
    (* About to wait: push whatever the burst staged so a batch never
       sits in the tx pool across an idle period. *)
    ignore (Transport_udp.flush sock : int);
    Mutex.lock mb.m;
    let stop = mb.stop in
    Mutex.unlock mb.m;
    if stop then Engine.stop engine
    else
      no_eintr ~default:() (fun () ->
          match due with
          | None -> Unix.sleepf 0.002
          | Some d ->
            let ahead = Time.to_sec d -. Time.to_sec (Clock.elapsed clock) in
            if ahead > 0. then Unix.sleepf (Float.min ahead 0.01))
  in
  ignore
    (Engine.run_clocked ~clock ~idle
       ~tick:(fun () -> ignore (Transport_udp.flush sock : int))
       ~until:(Time.of_sec cfg.duration) engine);
  ignore (Transport_udp.flush sock : int);
  Mutex.lock mb.m;
  let graceful = mb.graceful in
  Mutex.unlock mb.m;
  (* Graceful (SIGTERM) stop: the sender's next_seq must be durable so
     the next incarnation never reuses a sequence number. *)
  if graceful then
    List.iter
      (fun (i, sender, _, _, _, _) ->
        final_save base_store ~key:(key_of cfg Send i)
          ~value:(Sender.next_seq sender))
      states;
  publish ();
  Transport_udp.close sock

(* ------------------------------------------------------------------ *)

let aggregate mailboxes =
  let stats =
    Array.concat
      (Array.to_list
         (Array.map
            (fun mb ->
              Mutex.lock mb.m;
              let s = Array.copy mb.snapshot in
              Mutex.unlock mb.m;
              s)
            mailboxes))
  in
  Array.sort (fun a b -> compare a.spi b.spi) stats;
  stats

(* Gate: did every SA converge after the restart, within the paper's
   bound, with no cross-incarnation replay? Returns violation strings
   (empty = pass). *)
let check_gate cfg ~prev stats =
  (* Adaptive daemons may legitimately run a larger K than configured;
     the convergence budget scales with the policy's worst case. *)
  let leap = 2 * K_policy.bound_of_mode (policy_mode cfg) in
  List.concat_map
    (fun s ->
      let fail fmt = Printf.ksprintf (fun m -> [ m ]) fmt in
      let v1 =
        (* Re-establishment ignores stored state by design: the SA is
           expected to come up fresh, not to recover. *)
        if cfg.discipline = Reestablish then []
        else if not s.recovered then
          fail "spi %d: no stored edge found — previous incarnation left no state"
            s.spi
        else []
      and v2 =
        if s.delivered = 0 then
          fail "spi %d: no deliveries after recovery (did not converge)" s.spi
        else []
      and v3 =
        (* The bound covers fresh messages lost outright; rejections of
           wire-duplicated frames whose original was delivered are not
           losses (the wire may duplicate freely). *)
        if s.lost > leap then
          fail "spi %d: %d fresh messages lost > 2k = %d (convergence bound \
                broken)"
            s.spi s.lost leap
        else []
      and v4 =
        if s.dups > 0 then fail "spi %d: %d duplicate deliveries" s.spi s.dups
        else []
      and v5 =
        if s.bad_icv > 0 then
          fail "spi %d: %d integrity failures on a clean wire" s.spi s.bad_icv
        else []
      and v6 =
        match List.assoc_opt s.spi prev with
        | Some (prev_max, _) when s.min_seq > 0 && s.min_seq <= prev_max ->
          fail
            "spi %d: delivered seq %d <= previous incarnation's max %d \
             (cross-incarnation replay)"
            s.spi s.min_seq prev_max
        | _ -> []
      in
      List.concat [ v1; v2; v3; v4; v5; v6 ])
    (Array.to_list stats)

let report cfg ~elapsed_s ~wire_rx ~wire_tx ~wire_tx_errors ~wire_stats ~gate
    stats =
  let total f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  let delivered = total (fun s -> s.delivered)
  and sent = total (fun s -> s.sent) in
  let pps =
    match cfg.role with
    | Recv -> float_of_int delivered /. elapsed_s
    | Send -> float_of_int sent /. elapsed_s
  in
  Json.Obj
    [
      ("role", Json.String (match cfg.role with Send -> "send" | Recv -> "recv"));
      ("sas", Json.Int cfg.sas);
      ("k", Json.Int cfg.k);
      ("k_policy", Json.String (K_policy.describe (policy_mode cfg)));
      ( "discipline",
        Json.String
          (match cfg.discipline with
          | Per_sa -> "per-sa"
          | Coalesced -> "coalesced"
          | Reestablish -> "reestablish") );
      ( "churn",
        Json.String
          (match cfg.churn with
          | Steady -> "steady"
          | Storm -> "storm"
          | Mixed -> "mixed") );
      ("impair", Json.String (Impair.spec_to_string cfg.impair));
      ("store_faults", Json.String (Faults.spec_to_string cfg.store_faults));
      ("workers", Json.Int cfg.workers);
      ("elapsed_s", Json.Float elapsed_s);
      ("wire_rx", Json.Int wire_rx);
      ("wire_tx", Json.Int wire_tx);
      ("wire_tx_errors", Json.Int wire_tx_errors);
      ("batch", Json.Int cfg.batch);
      ("wire", wire_stats);
      ("sent", Json.Int sent);
      ("delivered", Json.Int delivered);
      ("pps", Json.Float pps);
      ("pps_per_core", Json.Float (pps /. float_of_int cfg.workers));
      ("per_sa", Json.List (List.map json_of_stat (Array.to_list stats)));
      ( "gate",
        Json.Obj
          [
            ("checked", Json.Bool cfg.expect_recovery);
            ("passed", Json.Bool (gate = []));
            ("violations", Json.List (List.map (fun v -> Json.String v) gate));
          ] );
    ]

let run cfg =
  if cfg.sas < 1 then invalid_arg "Daemon.run: sas must be >= 1";
  if cfg.workers < 1 then invalid_arg "Daemon.run: workers must be >= 1";
  if cfg.batch < 1 || cfg.batch > Batch_io.max_batch then
    invalid_arg
      (Printf.sprintf "Daemon.run: batch must be in [1, %d]" Batch_io.max_batch);
  if cfg.workers > cfg.sas then invalid_arg "Daemon.run: more workers than SAs";
  (match (cfg.role, cfg.bind, cfg.peer) with
  | Recv, None, _ -> invalid_arg "Daemon.run: Recv needs a bind address"
  | Send, _, None -> invalid_arg "Daemon.run: Send needs a peer address"
  | _ -> ());
  if not (Sys.file_exists cfg.store_dir) then Sys.mkdir cfg.store_dir 0o755;
  (* Graceful shutdown: a SIGTERM only raises this flag; the main loop
     notices it, stops the workers with [graceful] set (final blocking
     SAVE per SA), and appends the terminal heartbeat. The handler is
     opt-in — embedded runs (tests, the fleet supervisor's own process)
     must not have their signal dispositions stolen. *)
  let stop_requested = Atomic.make false in
  let prev_sigterm =
    if cfg.handle_signals then
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)))
    else None
  in
  (* Read the previous incarnation's last heartbeat BEFORE appending
     this incarnation's first one. *)
  let prev =
    match cfg.stats_path with
    | Some path when cfg.expect_recovery -> read_prev_stats path
    | Some _ | None -> []
  in
  let clock = Clock.of_ns_source now_ns in
  let mailboxes = Array.init cfg.workers (fun _ -> make_mailbox cfg.sas) in
  let sock =
    match cfg.role with
    | Recv ->
      Some
        (Transport_udp.create ?bind:cfg.bind ~batch:cfg.batch
           ?rcvbuf:cfg.rcvbuf ?sndbuf:cfg.sndbuf ())
    | Send -> None
  in
  (* Frames are partitioned by SPI shard straight out of the rx arena
     (no string until the shard is known to want the frame); each
     worker's chunk is then pushed under ONE lock acquisition per
     drained burst, not one per frame. *)
  let chunks = Array.make cfg.workers [] in
  Option.iter
    (fun s ->
      Transport_udp.set_slice_handler s (fun slice ->
          match Esp.spi_of_slice slice with
          | None -> ()
          | Some spi ->
            let i = Int32.to_int spi - cfg.spi_base in
            if i >= 0 && i < cfg.sas then
              (* the arena slot is reused by the next receive batch, so
                 a frame crossing domains must be materialized *)
              chunks.(i mod cfg.workers) <-
                Slice.to_string slice :: chunks.(i mod cfg.workers)))
    sock;
  let dispatch () =
    for w = 0 to cfg.workers - 1 do
      match chunks.(w) with
      | [] -> ()
      | chunk ->
        chunks.(w) <- [];
        let mb = mailboxes.(w) in
        Mutex.lock mb.m;
        (* both lists are newest-first and [chunk] is strictly newer *)
        mb.frames <- chunk @ mb.frames;
        Mutex.unlock mb.m
    done
  in
  let pool = Domain_pool.create ~domains:cfg.workers ~init:(fun _ -> ()) () in
  let futures =
    Array.init cfg.workers (fun w ->
        Domain_pool.submit pool (fun () ->
            match cfg.role with
            | Recv -> recv_worker cfg mailboxes.(w) w
            | Send -> send_worker cfg mailboxes.(w) w))
  in
  (* A send daemon's sockets live in its workers; its wire stats reach
     the main domain through the mailbox snapshots. *)
  let wire_of_workers () =
    Array.fold_left
      (fun acc (mb : mailbox) ->
        Mutex.lock mb.m;
        let w = mb.wire in
        Mutex.unlock mb.m;
        {
          w_tx = acc.w_tx + w.w_tx;
          w_tx_errors = acc.w_tx_errors + w.w_tx_errors;
          w_tx_flushes = acc.w_tx_flushes + w.w_tx_flushes;
          w_tx_queue_hwm = max acc.w_tx_queue_hwm w.w_tx_queue_hwm;
          w_rcvbuf = max acc.w_rcvbuf w.w_rcvbuf;
          w_sndbuf = max acc.w_sndbuf w.w_sndbuf;
        })
      no_wire mailboxes
  in
  let wire_json () =
    match sock with
    | Some s ->
      Json.Obj
        [
          ("rx_frames", Json.Int (Transport_udp.rx_frames s));
          ("rx_dropped", Json.Int (Transport_udp.rx_dropped s));
          ("rx_batches", Json.Int (Transport_udp.rx_batches s));
          ("rx_batch_p50", Json.Int (Transport_udp.rx_batch_percentile s 0.5));
          ("rx_batch_p99", Json.Int (Transport_udp.rx_batch_percentile s 0.99));
          ("rx_batch_max", Json.Int (Transport_udp.rx_batch_max s));
          ("rcvbuf_effective", Json.Int (Transport_udp.rcvbuf_effective s));
        ]
    | None ->
      let w = wire_of_workers () in
      Json.Obj
        [
          ("tx_frames", Json.Int w.w_tx);
          ("tx_errors", Json.Int w.w_tx_errors);
          ("tx_flushes", Json.Int w.w_tx_flushes);
          ("tx_queue_hwm", Json.Int w.w_tx_queue_hwm);
          ("sndbuf_effective", Json.Int w.w_sndbuf);
        ]
  in
  (* Startup heartbeat: the effective socket-buffer sizes. The send
     role's sockets are worker-owned, so give the workers a moment to
     publish their first snapshot. *)
  (match cfg.stats_path with
  | None -> ()
  | Some path ->
    let rcv, snd =
      match sock with
      | Some s ->
        (Transport_udp.rcvbuf_effective s, Transport_udp.sndbuf_effective s)
      | None ->
        let deadline = Unix.gettimeofday () +. 1.0 in
        let rec wait () =
          let w = wire_of_workers () in
          if w.w_sndbuf > 0 || Unix.gettimeofday () > deadline then
            (w.w_rcvbuf, w.w_sndbuf)
          else begin
            Unix.sleepf 0.005;
            wait ()
          end
        in
        wait ()
    in
    append_startup path ~role:cfg.role ~batch:cfg.batch ~rcvbuf_effective:rcv
      ~sndbuf_effective:snd);
  (* Main loop: drain the socket (receive role) and emit heartbeats
     until the wall-clock duration elapses. *)
  let next_hb = ref cfg.heartbeat in
  let heartbeat ?event () =
    match cfg.stats_path with
    | None -> ()
    | Some path ->
      let shards =
        List.mapi
          (fun w (mb : mailbox) ->
            Mutex.lock mb.m;
            let l = mb.save_latencies in
            Mutex.unlock mb.m;
            json_of_latencies ~worker:w l)
          (Array.to_list mailboxes)
      in
      append_heartbeat ?event path ~role:cfg.role
        ~elapsed_ns:(Int64.to_int (Time.to_ns (Clock.elapsed clock)))
        ~shards ~wire:(wire_json ()) (aggregate mailboxes)
  in
  let rec main_loop () =
    let elapsed = Time.to_sec (Clock.elapsed clock) in
    if elapsed < cfg.duration && not (Atomic.get stop_requested) then begin
      if elapsed >= !next_hb then begin
        heartbeat ();
        next_hb := !next_hb +. cfg.heartbeat
      end;
      (match sock with
      | Some s ->
        if
          no_eintr ~default:false (fun () ->
              Transport_udp.wait_readable s ~timeout:0.02)
        then begin
          ignore (Transport_udp.drain s);
          dispatch ()
        end
      | None -> no_eintr ~default:() (fun () -> Unix.sleepf 0.02));
      main_loop ()
    end
  in
  main_loop ();
  (* One last sweep of the socket so frames that raced shutdown still
     reach their shard before the workers' final drain. *)
  (match sock with
  | Some s ->
    ignore (Transport_udp.drain s);
    dispatch ()
  | None -> ());
  let graceful = Atomic.get stop_requested in
  Array.iter
    (fun mb ->
      Mutex.lock mb.m;
      mb.stop <- true;
      mb.graceful <- graceful;
      Mutex.unlock mb.m)
    mailboxes;
  Array.iter Domain_pool.await futures;
  Domain_pool.shutdown pool;
  Option.iter (Sys.set_signal Sys.sigterm) prev_sigterm;
  let elapsed_s = Time.to_sec (Clock.elapsed clock) in
  let stats = aggregate mailboxes in
  (* Terminal heartbeat: a cleanly exiting daemon always leaves one,
     stamped with why it stopped. Its absence marks a crash. *)
  heartbeat
    ~event:("shutdown", if graceful then "sigterm" else "duration")
    ();
  let wire_rx =
    match sock with Some s -> Transport_udp.rx_frames s | None -> 0
  in
  let wire_stats = wire_json () in
  let ww = wire_of_workers () in
  Option.iter Transport_udp.close sock;
  let gate =
    if cfg.expect_recovery && cfg.role = Recv then check_gate cfg ~prev stats
    else []
  in
  let rep =
    report cfg ~elapsed_s ~wire_rx ~wire_tx:ww.w_tx
      ~wire_tx_errors:ww.w_tx_errors ~wire_stats ~gate stats
  in
  Option.iter (fun path -> Json.write_file path rep) cfg.json_path;
  ((if gate = [] then 0 else 2), rep)
