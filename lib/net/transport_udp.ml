open Resets_util
module Batch_io = Resets_net_stubs.Batch_io

type addr =
  | Udp of string * int
  | Unix_dgram of string

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected udp:HOST:PORT or unix:PATH" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" when rest <> "" -> Ok (Unix_dgram rest)
    | "udp" ->
      let parse_port port =
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok p
        | _ -> Error (Printf.sprintf "address %S: bad port %S" s port)
      in
      let split_host_port () =
        if String.length rest > 0 && rest.[0] = '[' then
          (* Bracketed IPv6 literal: udp:[::1]:4500. *)
          match String.index_opt rest ']' with
          | None -> Error (Printf.sprintf "address %S: unterminated '[' in host" s)
          | Some j ->
            let host = String.sub rest 1 (j - 1) in
            if host = "" then
              Error (Printf.sprintf "address %S: empty host in brackets" s)
            else if j + 1 >= String.length rest || rest.[j + 1] <> ':' then
              Error (Printf.sprintf "address %S: expected ':' after ']'" s)
            else
              Ok (host, String.sub rest (j + 2) (String.length rest - j - 2))
        else
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "address %S: missing port" s)
          | Some j ->
            let host = String.sub rest 0 j in
            if host = "" then
              Error
                (Printf.sprintf
                   "address %S: empty host — write udp:HOST:PORT (or \
                    udp:[V6]:PORT for a bare IPv6 literal)"
                   s)
            else if String.contains host ':' then
              Error
                (Printf.sprintf
                   "address %S: IPv6 literals must be bracketed — udp:[%s]:%s"
                   s host
                   (String.sub rest (j + 1) (String.length rest - j - 1)))
            else Ok (host, String.sub rest (j + 1) (String.length rest - j - 1))
      in
      Result.bind (split_host_port ()) (fun (host, port) ->
          Result.map (fun p -> Udp (host, p)) (parse_port port))
    | _ -> Error (Printf.sprintf "address %S: unknown scheme %S" s scheme))

let addr_to_string = function
  | Udp (h, p) when String.contains h ':' -> Printf.sprintf "udp:[%s]:%d" h p
  | Udp (h, p) -> Printf.sprintf "udp:%s:%d" h p
  | Unix_dgram p -> "unix:" ^ p

let sockaddr_of_addr = function
  | Unix_dgram path -> Unix.ADDR_UNIX path
  | Udp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match
          Unix.getaddrinfo host "" [ Unix.AI_SOCKTYPE Unix.SOCK_DGRAM ]
        with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> invalid_arg (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (inet, port)

let family_of = function
  | Unix_dgram _ -> Unix.PF_UNIX
  | Udp (host, _) as a -> (
    (* A bracketed literal identifies itself; a hostname needs the
       resolver's answer. *)
    if String.contains host ':' then Unix.PF_INET6
    else
      match sockaddr_of_addr a with
      | Unix.ADDR_INET (inet, _) ->
        if String.contains (Unix.string_of_inet_addr inet) ':' then
          Unix.PF_INET6
        else Unix.PF_INET
      | Unix.ADDR_UNIX _ -> assert false)

type t = {
  sock : Unix.file_descr;
  peer : Unix.sockaddr option;
  dest : Batch_io.dest option; (* peer, pre-lowered for send_batch *)
  bound_path : string option;
  batch : int;
  rx : Batch_io.ring;
  tx : Batch_io.ring;
  mutable tx_queued : int;
  mutable handler : (string -> unit) option;
  mutable slice_handler : (Slice.t -> unit) option;
  mutable tx_frames : int;
  mutable tx_errors : int;
  mutable rx_frames : int;
  mutable rx_dropped : int;
  (* wire-pressure observability, surfaced in the daemon heartbeat *)
  mutable tx_flushes : int;
  mutable tx_queue_hwm : int;
  rx_batch_hist : int array; (* index = frames in one recv batch *)
  mutable rx_batches : int;
  mutable rx_batch_max : int;
  rcvbuf_effective : int;
  sndbuf_effective : int;
}

let create ?bind ?peer ?(batch = Batch_io.default_batch) ?rcvbuf ?sndbuf () =
  let family =
    match (bind, peer) with
    | Some a, _ | None, Some a -> family_of a
    | None, None -> invalid_arg "Transport_udp.create: need bind or peer"
  in
  (match (bind, peer) with
  | Some a, Some b when family_of a <> family_of b ->
    invalid_arg "Transport_udp.create: bind and peer families differ"
  | _ -> ());
  if batch < 1 || batch > Batch_io.max_batch then
    invalid_arg
      (Printf.sprintf "Transport_udp.create: batch must be in [1, %d]"
         Batch_io.max_batch);
  let sock = Unix.socket family Unix.SOCK_DGRAM 0 in
  let set_buf opt v =
    match v with
    | None -> ()
    | Some n -> (
      try Unix.setsockopt_int sock opt n with Unix.Unix_error _ -> ())
  in
  set_buf Unix.SO_RCVBUF rcvbuf;
  set_buf Unix.SO_SNDBUF sndbuf;
  let get_buf opt = try Unix.getsockopt_int sock opt with Unix.Unix_error _ -> 0 in
  let bound_path =
    match bind with
    | None -> None
    | Some a ->
      (match a with
      | Unix_dgram path when Sys.file_exists path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
      | Unix_dgram _ | Udp _ -> ());
      (try
         if family <> Unix.PF_UNIX then
           Unix.setsockopt sock Unix.SO_REUSEADDR true
       with Unix.Unix_error _ -> ());
      Unix.bind sock (sockaddr_of_addr a);
      (match a with Unix_dgram path -> Some path | Udp _ -> None)
  in
  Unix.set_nonblock sock;
  let peer_sockaddr = Option.map sockaddr_of_addr peer in
  {
    sock;
    peer = peer_sockaddr;
    dest = Option.map Batch_io.dest_of_sockaddr peer_sockaddr;
    bound_path;
    batch;
    rx = Batch_io.ring batch;
    tx = Batch_io.ring batch;
    tx_queued = 0;
    handler = None;
    slice_handler = None;
    tx_frames = 0;
    tx_errors = 0;
    rx_frames = 0;
    rx_dropped = 0;
    tx_flushes = 0;
    tx_queue_hwm = 0;
    rx_batch_hist = Array.make (batch + 1) 0;
    rx_batches = 0;
    rx_batch_max = 0;
    rcvbuf_effective = get_buf Unix.SO_RCVBUF;
    sndbuf_effective = get_buf Unix.SO_SNDBUF;
  }

(* ---- tx: batched sends -------------------------------------------- *)

let flush t =
  if t.tx_queued = 0 then 0
  else begin
    let count = t.tx_queued in
    let dest =
      match t.dest with
      | Some d -> d
      | None -> invalid_arg "Transport_udp.flush: no peer address"
    in
    let sent = Batch_io.send_batch t.sock t.tx ~dest ~count in
    (* Partial completion: the kernel refused frame [sent] (would-
       block, dead peer) and we never retry — the unsent tail is
       channel loss, which the protocol tolerates by design. *)
    t.tx_frames <- t.tx_frames + sent;
    t.tx_errors <- t.tx_errors + (count - sent);
    t.tx_queued <- 0;
    t.tx_flushes <- t.tx_flushes + 1;
    sent
  end

(* Stage one frame in the next tx-pool slot; flush when the batch is
   full. Returns [false] only when the frame is known lost: oversized,
   or it sat in the tail a full-queue flush could not deliver. *)
let enqueue t write_frame =
  if t.peer = None then invalid_arg "Transport_udp.send_frame: no peer address";
  let slot = t.tx_queued in
  match write_frame t.tx.bufs.(slot) with
  | exception Invalid_argument _ ->
    t.tx_errors <- t.tx_errors + 1;
    false
  | len ->
    t.tx.lens.(slot) <- len;
    t.tx_queued <- slot + 1;
    if t.tx_queued > t.tx_queue_hwm then t.tx_queue_hwm <- t.tx_queued;
    if t.tx_queued >= t.batch then flush t >= slot + 1 else true

let send_frame t frame =
  let len = String.length frame in
  enqueue t (fun buf ->
      if len > Bytes.length buf then invalid_arg "oversized frame";
      Bytes.blit_string frame 0 buf 0 len;
      len)

let send_slice t (s : Slice.t) =
  enqueue t (fun buf ->
      if s.Slice.len > Bytes.length buf then invalid_arg "oversized frame";
      Slice.blit s buf ~dst_off:0;
      s.Slice.len)

(* ---- rx: batched receive into the arena --------------------------- *)

let set_frame_handler t h =
  t.slice_handler <- None;
  t.handler <- Some h

let set_slice_handler t h =
  t.handler <- None;
  t.slice_handler <- Some h

let drain t =
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let n = Batch_io.recv_batch t.sock t.rx ~count:t.batch in
    if n = 0 then continue := false
    else begin
      t.rx_batches <- t.rx_batches + 1;
      t.rx_batch_hist.(n) <- t.rx_batch_hist.(n) + 1;
      if n > t.rx_batch_max then t.rx_batch_max <- n;
      for i = 0 to n - 1 do
        let len = t.rx.lens.(i) in
        if len < 0 then
          (* Kernel-truncated frame (cannot happen at 64 KiB slots,
             but the accounting is kept honest anyway). *)
          t.rx_dropped <- t.rx_dropped + 1
        else begin
          (* A zero-length datagram is a real datagram: counted and
             delivered; the codec rejects it as a short frame. *)
          t.rx_frames <- t.rx_frames + 1;
          incr total;
          match t.slice_handler with
          | Some h -> h (Slice.make t.rx.bufs.(i) ~off:0 ~len)
          | None -> (
            match t.handler with
            | Some h -> h (Bytes.sub_string t.rx.bufs.(i) 0 len)
            | None -> t.rx_dropped <- t.rx_dropped + 1)
        end
      done;
      (* A short batch means the socket queue is empty: skip the
         would-block syscall. *)
      if n < t.batch then continue := false
    end
  done;
  !total

let wait_readable t ~timeout =
  match Unix.select [ t.sock ] [] [] timeout with
  | [], _, _ -> false
  | _ :: _, _, _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let transport t =
  Resets_core.Transport.make
    ~label:
      (match t.peer with
      | Some (Unix.ADDR_UNIX p) -> "wire:unix:" ^ p
      | Some (Unix.ADDR_INET (a, p)) ->
        Printf.sprintf "wire:udp:%s:%d" (Unix.string_of_inet_addr a) p
      | None -> "wire:recv-only")
    ~send:(fun pkt -> send_frame t pkt.Resets_core.Packet.wire)
    ~set_recv:(fun h ->
      set_frame_handler t (fun frame -> h (Resets_core.Packet.fresh frame)))
    ~send_slice:(fun s -> send_slice t s)
    ~set_recv_slice:(fun h -> set_slice_handler t h)
    ()

let tx_frames t = t.tx_frames
let tx_errors t = t.tx_errors
let rx_frames t = t.rx_frames
let rx_dropped t = t.rx_dropped
let batch t = t.batch
let tx_queued t = t.tx_queued
let tx_flushes t = t.tx_flushes
let tx_queue_hwm t = t.tx_queue_hwm
let rx_batches t = t.rx_batches
let rx_batch_max t = t.rx_batch_max
let rcvbuf_effective t = t.rcvbuf_effective
let sndbuf_effective t = t.sndbuf_effective

(* Percentile over the rx batch-size histogram: the size at or below
   which [p] of all batches fell. 0 when no batch has arrived. *)
let rx_batch_percentile t p =
  if t.rx_batches = 0 then 0
  else begin
    let target =
      let exact = float_of_int t.rx_batches *. p in
      Stdlib.max 1 (int_of_float (ceil exact))
    in
    let acc = ref 0 and result = ref t.rx_batch_max in
    (try
       for n = 1 to t.batch do
         acc := !acc + t.rx_batch_hist.(n);
         if !acc >= target then begin
           result := n;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let close t =
  (try ignore (flush t : int) with Invalid_argument _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  match t.bound_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()
