type addr =
  | Udp of string * int
  | Unix_dgram of string

let addr_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected udp:HOST:PORT or unix:PATH" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" when rest <> "" -> Ok (Unix_dgram rest)
    | "udp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "address %S: missing port" s)
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Udp (host, p))
        | _ -> Error (Printf.sprintf "address %S: bad host or port" s)))
    | _ -> Error (Printf.sprintf "address %S: unknown scheme %S" s scheme))

let addr_to_string = function
  | Udp (h, p) -> Printf.sprintf "udp:%s:%d" h p
  | Unix_dgram p -> "unix:" ^ p

let sockaddr_of_addr = function
  | Unix_dgram path -> Unix.ADDR_UNIX path
  | Udp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
        | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
        | _ -> invalid_arg (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (inet, port)

let family_of = function
  | Udp _ -> Unix.PF_INET
  | Unix_dgram _ -> Unix.PF_UNIX

type t = {
  sock : Unix.file_descr;
  peer : Unix.sockaddr option;
  bound_path : string option;
  buf : Bytes.t;
  mutable handler : (string -> unit) option;
  mutable tx_frames : int;
  mutable tx_errors : int;
  mutable rx_frames : int;
  mutable rx_dropped : int;
}

let create ?bind ?peer () =
  let family =
    match (bind, peer) with
    | Some a, _ | None, Some a -> family_of a
    | None, None -> invalid_arg "Transport_udp.create: need bind or peer"
  in
  (match (bind, peer) with
  | Some a, Some b when family_of a <> family_of b ->
    invalid_arg "Transport_udp.create: bind and peer families differ"
  | _ -> ());
  let sock = Unix.socket family Unix.SOCK_DGRAM 0 in
  let bound_path =
    match bind with
    | None -> None
    | Some a ->
      (match a with
      | Unix_dgram path when Sys.file_exists path -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
      | Unix_dgram _ | Udp _ -> ());
      (try
         if family = Unix.PF_INET then
           Unix.setsockopt sock Unix.SO_REUSEADDR true
       with Unix.Unix_error _ -> ());
      Unix.bind sock (sockaddr_of_addr a);
      (match a with Unix_dgram path -> Some path | Udp _ -> None)
  in
  Unix.set_nonblock sock;
  {
    sock;
    peer = Option.map sockaddr_of_addr peer;
    bound_path;
    buf = Bytes.create 65536;
    handler = None;
    tx_frames = 0;
    tx_errors = 0;
    rx_frames = 0;
    rx_dropped = 0;
  }

let send_frame t frame =
  match t.peer with
  | None -> invalid_arg "Transport_udp.send_frame: no peer address"
  | Some dst -> (
    let len = String.length frame in
    match
      Unix.sendto t.sock (Bytes.unsafe_of_string frame) 0 len [] dst
    with
    | n when n = len ->
      t.tx_frames <- t.tx_frames + 1;
      true
    | _ ->
      t.tx_errors <- t.tx_errors + 1;
      false
    | exception Unix.Unix_error _ ->
      (* Dead peer (ECONNREFUSED / ENOENT on unix-dgram), full buffers
         (EAGAIN), oversized frame: all channel loss to the protocol. *)
      t.tx_errors <- t.tx_errors + 1;
      false)

let set_frame_handler t h = t.handler <- Some h

let drain t =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Unix.recvfrom t.sock t.buf 0 (Bytes.length t.buf) [] with
    | 0, _ -> continue := false
    | n, _ -> (
      t.rx_frames <- t.rx_frames + 1;
      incr count;
      let frame = Bytes.sub_string t.buf 0 n in
      match t.handler with
      | Some h -> h frame
      | None -> t.rx_dropped <- t.rx_dropped + 1)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* Linux reports a previous send's ICMP error on the next recv;
         not an arriving frame. *)
      ()
  done;
  !count

let wait_readable t ~timeout =
  match Unix.select [ t.sock ] [] [] timeout with
  | [], _, _ -> false
  | _ :: _, _, _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let transport t =
  Resets_core.Transport.make
    ~label:
      (match t.peer with
      | Some (Unix.ADDR_UNIX p) -> "wire:unix:" ^ p
      | Some (Unix.ADDR_INET (a, p)) ->
        Printf.sprintf "wire:udp:%s:%d" (Unix.string_of_inet_addr a) p
      | None -> "wire:recv-only")
    ~send:(fun pkt -> send_frame t pkt.Resets_core.Packet.wire)
    ~set_recv:(fun h ->
      set_frame_handler t (fun frame -> h (Resets_core.Packet.fresh frame)))

let tx_frames t = t.tx_frames
let tx_errors t = t.tx_errors
let rx_frames t = t.rx_frames
let rx_dropped t = t.rx_dropped

let close t =
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  match t.bound_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()
