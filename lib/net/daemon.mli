(** The [serve] daemon: the paper's protocol as two real processes.

    One daemon plays one side of the unidirectional association —
    [Send] (process p) or [Recv] (process q) — over a
    {!Transport_udp} socket, with sequence state persisted through
    {!Resets_persist.File_store} under the SAVE/FETCH k-rule, exactly
    the code paths the simulation runs, now against a wall clock
    ({!Resets_sim.Clock.of_ns_source}) and a real filesystem.

    {b Recovery is implicit in the store.} On startup, each SA whose
    key already exists in the store directory is a previous
    incarnation's: the daemon then skips the establishment preload and
    performs the paper's wakeup — FETCH, leap by [2k], blocking SAVE —
    before touching the wire. Killing a daemon with SIGKILL and
    restarting it on the same store is therefore the paper's reset
    experiment on real processes.

    {b Sharding.} SAs are distributed round-robin by SPI across
    [workers] domains ({!Resets_util.Domain_pool}). The receive side
    keeps the socket on the main domain (single-owner discipline): each
    {!Transport_udp.drain} pulls whole [recvmmsg] batches into the rx
    arena, the SPI is read off each frame in place
    ({!Resets_ipsec.Esp.spi_of_slice}) to pick its shard, and every
    worker's chunk is pushed to its mailbox under a single lock
    acquisition per drained burst — never one lock per frame. Each send
    worker owns a batched socket of its own, flushed at every
    engine-tick boundary ({!Resets_sim.Engine.run_clocked}'s [tick]
    hook) so staged frames never outlive a tick. Every worker drives
    its own engine with {!Resets_sim.Engine.run_clocked}.

    {b Observability.} With [stats_path] set, a startup line records
    the configured [batch] and the socket-buffer sizes the kernel
    actually granted ([rcvbuf_effective]/[sndbuf_effective]); each
    heartbeat line carries a ["wire"] object — receive-batch fill
    percentiles ([rx_batch_p50]/[p99]/[max]) on the receive side, flush
    counts and the tx-pool high-water mark on the send side.

    {b Convergence gate.} With [expect_recovery], a receiving daemon
    exits 0 only if every SA converged after the restart: its stored
    edge was recovered, fresh traffic was delivered again, at most
    [2k] fresh packets were rejected (the paper's bound), no duplicate
    deliveries, no ICV failures, and — against the previous
    incarnation's last heartbeat in [stats_path] — no delivered
    sequence number at or below the old incarnation's highest (no
    cross-incarnation replay). Violations exit 2, listed in the
    report. *)

type role = Send | Recv

(** Recovery discipline: how this process treats persisted sequence
    state across a restart — one axis of the E17 reboot-convergence
    matrix. *)
type discipline =
  | Per_sa  (** one store key per SA, each recovered independently *)
  | Coalesced
      (** one {!Resets_persist.File_store.Snapshot} file per worker:
          every SA of the shard saves and recovers together (the
          paper's Section 6 coalesced discipline on a real disk) *)
  | Reestablish
      (** ignore stored state; every SA establishes a fresh sequence
          space (recovery by re-establishment — the alternative the
          paper's protocol exists to avoid). The [expect_recovery]
          gate then checks convergence without requiring recovery. *)

(** Background traffic shape (the churn axis). The daemon has no wire
    IKE, so a "rekey storm" is modelled at the wire level as the
    bursty on/off source; [Mixed] alternates shapes by SA index. *)
type churn = Steady | Storm | Mixed

type config = {
  role : role;
  bind : Transport_udp.addr option;  (** required for [Recv] *)
  peer : Transport_udp.addr option;  (** required for [Send] *)
  secret : string;  (** shared SA-derivation secret (no wire IKE) *)
  spi_base : int;
  sas : int;  (** SPIs [spi_base .. spi_base+sas-1] *)
  k : int;  (** SAVE every [k] (leap = [2k]) *)
  adaptive : bool;
      (** when true, each SA runs {!Resets_core.K_policy.adaptive}
          seeded at [k]: the SAVE cadence re-derives itself online
          from measured wall-clock SAVE latency and inter-send gaps
          (the gate's leap bound widens to [2 * ceiling]) *)
  window : int;
  rate_pps : float;  (** send rate per SA *)
  duration : float;  (** wall-clock run time, seconds *)
  store_dir : string;
  stats_path : string option;
      (** heartbeat JSONL, appended — and, on restart, where the
          previous incarnation's last heartbeat is read from *)
  json_path : string option;  (** final report *)
  workers : int;
  expect_recovery : bool;
  heartbeat : float;  (** heartbeat period, seconds *)
  batch : int;
      (** wire batch size (rx arena slots / tx pool depth), in
          [\[1, Batch_io.max_batch\]]; 1 = unbatched
          one-syscall-per-frame *)
  rcvbuf : int option;  (** request an explicit [SO_RCVBUF] *)
  sndbuf : int option;  (** request an explicit [SO_SNDBUF] *)
  discipline : discipline;
  churn : churn;
  impair : Resets_core.Impair.spec;
      (** seed-deterministic impairment on every sender's view of the
          wire (loss, bursts, dup, reorder, delay); {!Impair.none}
          leaves the send path untouched *)
  impair_seed : int;
      (** PRNG root for impairment (and churn) streams, keyed per SA
          by global index — patterns are independent of sharding *)
  store_faults : Resets_persist.Faults.spec;
      (** seed-deterministic fault plan on the file store (transient
          write failures, aborted renames, corrupt/stale checked
          reads); {!Resets_persist.Faults.none} = clean store *)
  fault_seed : int;  (** PRNG root for store faults, keyed per worker *)
  handle_signals : bool;
      (** install a SIGTERM handler: on delivery the daemon stops
          early, every SA performs a final blocking SAVE of its
          freshest counter, and the terminal heartbeat is stamped
          [reason = "sigterm"]. Opt-in so embedded runs never steal
          the host process's signal dispositions. *)
}

val default : config
(** [Recv] over [unix:/tmp/resets.sock], 1 SA, [k = 8], 1 worker, 3 s
    at 200 pps — override per run. *)

val run : config -> int * Resets_util.Json.t
(** Run to [duration]; returns (exit code, final report). Exit 0 on
    success, 2 when the [expect_recovery] gate found violations
    (listed under ["gate"] in the report). *)
