(* Batched datagram I/O over a pooled frame arena.

   The mmsg path (Linux) moves a whole batch per syscall through the
   stubs in mmsg_stubs.c; everywhere else — and whenever forced for
   differential testing — the portable fallback makes one Unix.recv /
   Unix.sendto call per frame over the very same rings. Both paths
   present identical semantics to Transport_udp: same counts, same
   order, same loss discipline. *)

type dest =
  | Inet of string * int  (* numeric host (v4 or v6), port *)
  | Unix_path of string

external mmsg_available : unit -> bool = "caml_resets_mmsg_available"

external recvmmsg_stub :
  Unix.file_descr -> Bytes.t array -> int array -> int -> int
  = "caml_resets_recvmmsg"

external sendmmsg_stub :
  Unix.file_descr -> dest -> Bytes.t array -> int array -> int -> int
  = "caml_resets_sendmmsg"

(* Mirrors RESETS_MAX_BATCH in mmsg_stubs.c. *)
let max_batch = 64
let default_batch = 32

(* 65535 covers the largest possible UDP datagram, so the mmsg path
   can never hit MSG_TRUNC and the fallback path (which cannot detect
   truncation portably) can never truncate. *)
let frame_size = 65536

let forced_fallback = ref (Sys.getenv_opt "RESETS_NO_MMSG" <> None)
let force_fallback b = forced_fallback := b
let using_mmsg () = mmsg_available () && not !forced_fallback

type ring = {
  bufs : Bytes.t array;
  lens : int array;
  batch : int;
}

let ring batch =
  if batch < 1 || batch > max_batch then
    invalid_arg
      (Printf.sprintf "Batch_io.ring: batch must be in [1, %d]" max_batch);
  {
    bufs = Array.init batch (fun _ -> Bytes.create frame_size);
    lens = Array.make batch 0;
    batch;
  }

let dest_of_sockaddr = function
  | Unix.ADDR_UNIX path -> Unix_path path
  | Unix.ADDR_INET (a, p) -> Inet (Unix.string_of_inet_addr a, p)

let sockaddr_of_dest = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Inet (h, p) -> Unix.ADDR_INET (Unix.inet_addr_of_string h, p)

(* Fill [r.bufs.(0..n-1)] / [r.lens] with up to [count] queued
   datagrams; returns n. A zero-length datagram is a real datagram:
   lens.(i) = 0 and it counts. lens.(i) = -1 marks a frame the kernel
   truncated (mmsg path only; cannot happen at [frame_size]). *)
let recv_batch fd r ~count =
  let count = min count r.batch in
  if using_mmsg () then begin
    match recvmmsg_stub fd r.bufs r.lens count with
    | -1 -> 0
    | n -> n
  end
  else begin
    let n = ref 0 and continue = ref true in
    while !continue && !n < count do
      let buf = r.bufs.(!n) in
      match Unix.recv fd buf 0 frame_size [] with
      | len ->
        r.lens.(!n) <- len;
        incr n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        (* Deferred ICMP error from an earlier send, not a frame. *)
        ()
    done;
    !n
  end

(* Send [r.bufs.(i)][0..r.lens.(i)) for i < count to [dest]; returns
   how many the kernel accepted. Sending stops at the first refusal
   (would-block, dead peer, unreachable) and the unsent tail is the
   caller's tx_errors — the paper's channel is lossy, so a refused
   frame is loss, never an exception. *)
let send_batch fd r ~dest ~count =
  let count = min count r.batch in
  if using_mmsg () then sendmmsg_stub fd dest r.bufs r.lens count
  else begin
    let sockaddr = sockaddr_of_dest dest in
    let sent = ref 0 and continue = ref true in
    while !continue && !sent < count do
      let buf = r.bufs.(!sent) and len = r.lens.(!sent) in
      match Unix.sendto fd buf 0 len [] sockaddr with
      | n when n = len -> incr sent
      | _ -> continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> continue := false
    done;
    !sent
  end
