/* recvmmsg/sendmmsg batched datagram I/O.
 *
 * One syscall moves up to RESETS_MAX_BATCH datagrams between the
 * kernel and a pre-registered ring of OCaml [Bytes.t] buffers (the
 * frame arena owned by Batch_io). The socket is nonblocking and the
 * calls never release the runtime lock, so holding direct pointers
 * into the OCaml heap across the syscall is safe: no allocation, no
 * GC, no other mutator can run.
 *
 * Outside Linux the primitives compile to "unavailable" stubs and
 * Batch_io routes everything through the portable one-syscall-per-
 * frame Unix fallback instead — same observable frame stream, just
 * slower.
 *
 * Error discipline mirrors Transport_udp: EINTR retries in place;
 * ECONNREFUSED on receive (deferred ICMP from an earlier send to a
 * dead peer) retries in place, it is not an arriving frame; EAGAIN
 * means "ring drained"/"kernel buffer full" and returns -1. A send
 * refused for a destination-shaped reason (dead peer, unreachable,
 * oversized) returns the count already sent — the unsent tail is the
 * caller's tx_errors, i.e. channel loss, never an exception.
 */

#define _GNU_SOURCE

#include <errno.h>
#include <string.h>

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>

#define RESETS_MAX_BATCH 64

#ifdef __linux__

#include <sys/types.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <sys/un.h>
#include <caml/unixsupport.h>

CAMLprim value caml_resets_mmsg_available(value unit)
{
  (void)unit;
  return Val_true;
}

/* caml_resets_recvmmsg fd bufs lens count
 *   Receive up to [count] datagrams into bufs[0..count-1]; write each
 *   datagram's length into lens[i] (-1 if it was truncated to the
 *   buffer, i.e. MSG_TRUNC). Returns the number received, or -1 when
 *   nothing is queued. */
CAMLprim value caml_resets_recvmmsg(value vfd, value vbufs, value vlens,
                                    value vcount)
{
  struct mmsghdr msgs[RESETS_MAX_BATCH];
  struct iovec iovs[RESETS_MAX_BATCH];
  long count = Long_val(vcount);
  int n, i;
  if (count > RESETS_MAX_BATCH) count = RESETS_MAX_BATCH;
  if (count <= 0) return Val_long(0);
  for (i = 0; i < count; i++) {
    value b = Field(vbufs, i);
    iovs[i].iov_base = Bytes_val(b);
    iovs[i].iov_len = caml_string_length(b);
    memset(&msgs[i].msg_hdr, 0, sizeof(struct msghdr));
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  for (;;) {
    n = recvmmsg(Int_val(vfd), msgs, (unsigned int)count, MSG_DONTWAIT, NULL);
    if (n >= 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Val_long(-1);
    if (errno == EINTR || errno == ECONNREFUSED) continue;
    caml_uerror("recvmmsg", Nothing);
  }
  for (i = 0; i < n; i++) {
    long len = (long)msgs[i].msg_len;
    if (msgs[i].msg_hdr.msg_flags & MSG_TRUNC) len = -1;
    Field(vlens, i) = Val_long(len);
  }
  return Val_long(n);
}

/* Destination: OCaml Batch_io.dest, tag 0 = Inet (numeric host, port),
 * tag 1 = Unix_path path. Built here with inet_pton so the hot path
 * never touches the (allocating) Unix.sockaddr representation. */
static socklen_t build_sockaddr(value vdest, struct sockaddr_storage *ss)
{
  memset(ss, 0, sizeof *ss);
  if (Tag_val(vdest) == 0) {
    const char *host = String_val(Field(vdest, 0));
    int port = Int_val(Field(vdest, 1));
    struct sockaddr_in *sin = (struct sockaddr_in *)ss;
    struct sockaddr_in6 *sin6 = (struct sockaddr_in6 *)ss;
    if (inet_pton(AF_INET, host, &sin->sin_addr) == 1) {
      sin->sin_family = AF_INET;
      sin->sin_port = htons((unsigned short)port);
      return (socklen_t)sizeof *sin;
    }
    if (inet_pton(AF_INET6, host, &sin6->sin6_addr) == 1) {
      sin6->sin6_family = AF_INET6;
      sin6->sin6_port = htons((unsigned short)port);
      return (socklen_t)sizeof *sin6;
    }
    caml_invalid_argument("Batch_io.send_batch: host is not a numeric address");
  } else {
    struct sockaddr_un *sun = (struct sockaddr_un *)ss;
    mlsize_t plen = caml_string_length(Field(vdest, 0));
    if (plen >= sizeof sun->sun_path)
      caml_invalid_argument("Batch_io.send_batch: unix socket path too long");
    sun->sun_family = AF_UNIX;
    memcpy(sun->sun_path, String_val(Field(vdest, 0)), plen + 1);
    return (socklen_t)sizeof *sun;
  }
}

/* caml_resets_sendmmsg fd dest bufs lens count
 *   Send bufs[i][0..lens[i]) for i < count as [count] datagrams to
 *   [dest]. Returns how many the kernel accepted (0..count); the
 *   unsent tail — would-block, dead peer, unreachable — is the
 *   caller's per-frame loss accounting. Raises only on errors that
 *   are not destination-shaped (e.g. EBADF). */
CAMLprim value caml_resets_sendmmsg(value vfd, value vdest, value vbufs,
                                    value vlens, value vcount)
{
  struct mmsghdr msgs[RESETS_MAX_BATCH];
  struct iovec iovs[RESETS_MAX_BATCH];
  struct sockaddr_storage ss;
  socklen_t slen = build_sockaddr(vdest, &ss);
  long count = Long_val(vcount);
  int n, i;
  if (count > RESETS_MAX_BATCH) count = RESETS_MAX_BATCH;
  if (count <= 0) return Val_long(0);
  for (i = 0; i < count; i++) {
    value b = Field(vbufs, i);
    iovs[i].iov_base = Bytes_val(b);
    iovs[i].iov_len = (size_t)Long_val(Field(vlens, i));
    memset(&msgs[i].msg_hdr, 0, sizeof(struct msghdr));
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &ss;
    msgs[i].msg_hdr.msg_namelen = slen;
  }
  for (;;) {
    n = sendmmsg(Int_val(vfd), msgs, (unsigned int)count, 0);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED ||
        errno == ENOENT || errno == ENOTCONN || errno == EHOSTUNREACH ||
        errno == ENETUNREACH || errno == ENETDOWN || errno == EMSGSIZE ||
        errno == EPERM || errno == EACCES || errno == ENOBUFS)
      return Val_long(0);
    caml_uerror("sendmmsg", Nothing);
  }
  return Val_long(n);
}

#else /* !__linux__ */

CAMLprim value caml_resets_mmsg_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value caml_resets_recvmmsg(value vfd, value vbufs, value vlens,
                                    value vcount)
{
  (void)vfd; (void)vbufs; (void)vlens; (void)vcount;
  caml_failwith("Batch_io: recvmmsg not available on this platform");
}

CAMLprim value caml_resets_sendmmsg(value vfd, value vdest, value vbufs,
                                    value vlens, value vcount)
{
  (void)vfd; (void)vdest; (void)vbufs; (void)vlens; (void)vcount;
  caml_failwith("Batch_io: sendmmsg not available on this platform");
}

#endif
