(** Batched datagram I/O: recvmmsg/sendmmsg over a pooled frame arena,
    with a portable one-syscall-per-frame fallback.

    A {!ring} owns [batch] pre-allocated 64 KiB frame buffers and a
    parallel length array — allocated once, reused for every batch, so
    the steady-state rx/tx path allocates nothing. On Linux the ring
    doubles as the iovec registration for a single [recvmmsg] /
    [sendmmsg] syscall per batch (see [mmsg_stubs.c]); elsewhere — or
    under [RESETS_NO_MMSG=1] / {!force_fallback}, which the
    differential tests use — the same ring is walked with one
    [Unix.recv]/[Unix.sendto] per frame. Both paths deliver the same
    frame stream with the same counts in the same order.

    Loss discipline matches {!Transport_udp}: a refused send (dead
    peer, full buffers) terminates the batch and the unsent tail is
    the caller's [tx_errors] — channel loss, never an exception. *)

type dest =
  | Inet of string * int
      (** Numeric IPv4/IPv6 address (no name resolution here) + port. *)
  | Unix_path of string  (** Filesystem datagram socket path. *)

val max_batch : int
(** Hard per-syscall batch ceiling (mirrors the C stubs' stack arrays). *)

val default_batch : int
(** Default batch size (32) used by {!Transport_udp} and the daemon. *)

val frame_size : int
(** Per-slot buffer size; covers the largest possible UDP datagram, so
    no frame is ever truncated. *)

val mmsg_available : unit -> bool
(** Whether the mmsg syscalls were compiled in (Linux). *)

val using_mmsg : unit -> bool
(** Whether batches currently go through the mmsg stubs. *)

val force_fallback : bool -> unit
(** [force_fallback true] routes everything through the portable path
    even when mmsg is available; used by the stub-vs-fallback
    differential tests. [RESETS_NO_MMSG=1] in the environment does the
    same at startup. *)

type ring = {
  bufs : Bytes.t array;  (** [batch] buffers of {!frame_size} bytes. *)
  lens : int array;  (** Per-slot frame length for the current batch. *)
  batch : int;
}

val ring : int -> ring
(** [ring batch] allocates the arena. @raise Invalid_argument unless
    [1 <= batch <= max_batch]. *)

val dest_of_sockaddr : Unix.sockaddr -> dest
val sockaddr_of_dest : dest -> Unix.sockaddr

val recv_batch : Unix.file_descr -> ring -> count:int -> int
(** Pull up to [count] queued datagrams into the ring; returns how
    many arrived (0 when the socket would block). [lens.(i)] is each
    frame's byte length — 0 for a valid empty datagram (counted, not a
    poll terminator), or -1 for a kernel-truncated frame (mmsg path
    only; impossible at {!frame_size}). *)

val send_batch : Unix.file_descr -> ring -> dest:dest -> count:int -> int
(** Send the first [count] ring slots as datagrams to [dest]; returns
    how many the kernel accepted. Stops at the first refusal; the tail
    is the caller's loss accounting. *)
