(* Benchmark / experiment harness.

   Regenerates every quantitative artifact in the paper (see
   EXPERIMENTS.md for the paper <-> experiment map):

     E1  Figure 1 + Theorem (i): sender reset, loss bounded by 2Kp
     E2  Figure 2 + Theorem (ii): receiver reset, discards bounded by 2Kq
     E3  Section 3 ¶1: unbounded replay acceptance without SAVE/FETCH
     E4  Section 3 ¶2: unbounded fresh discards without SAVE/FETCH
     E5  Section 3 ¶3: the wedge attack after a double reset
     E6  Section 4: the SAVE-interval rule K >= ceil(T/g) (paper: 25)
     E7  Section 3/6: recovery cost, SAVE/FETCH vs SA re-establishment
     E8  Section 4: SAVE overhead and the robustness/throughput trade
     E9  Section 2: w-Delivery under reordering
     E10 Section 6: prolonged resets over a bidirectional pair
     E11 Section 5: bounded model checking of the APN models
     MICRO bechamel microbenchmarks of the hot paths

   Run all:        dune exec bench/main.exe
   Run a subset:   dune exec bench/main.exe -- E1 E6 MICRO *)

open Resets_sim
open Resets_core
open Resets_workload

let ms = Time.of_ms
let us = Time.of_us

let selected =
  match Array.to_list Sys.argv with
  | [] | [ _ ] -> None
  | _ :: picks -> Some (List.map String.uppercase_ascii picks)

let section id title f =
  let run =
    match selected with
    | None -> true
    | Some picks -> List.mem id picks
  in
  if run then begin
    Format.printf "@.=== %s — %s ===@." id title;
    f ()
  end

let hr () = Format.printf "%s@." (String.make 78 '-')

(* Base operating point: the paper's 4 us per message and 100 us per
   SAVE (Pentium III example), clean 10 us link. *)
let operating_point ?(kp = 25) ?(kq = 25) ?(horizon = ms 40) () =
  {
    Harness.default with
    horizon;
    message_gap = us 4;
    protocol = Protocol.save_fetch ~kp ~kq ();
  }

(* ------------------------------------------------------------------ *)
(* E1 *)

let e1 () =
  Format.printf
    "Sender reset swept across the SAVE cycle. Paper: gap <= 2Kp, lost@.\
     sequence numbers <= 2Kp, no fresh message discarded (Figure 1, Thm i).@.@.";
  Format.printf "%6s %8s %12s %10s %8s %10s %6s@." "Kp" "phase" "save-state"
    "skipped" "bound" "discards" "ok";
  hr ();
  let worst = ref 0 in
  List.iter
    (fun kp ->
      List.iter
        (fun (phase, label) ->
          (* Reset lands [phase] messages after a SAVE trigger; with
             T = 100 us and 4 us messages the triggered SAVE is in
             flight for the first 25 messages of each cycle. *)
          let trigger_msg = kp * 40 in
          let reset_at = Time.add (us ((trigger_msg + phase) * 4)) (us 2) in
          let scenario =
            {
              (operating_point ~kp ()) with
              resets = Reset_schedule.single ~at:reset_at ~downtime:(ms 1) Sender;
            }
          in
          let r = Harness.run scenario in
          let m = r.Harness.metrics in
          let bound = Analysis.max_lost_seqnos ~kp in
          let ok =
            m.Metrics.skipped_seqnos > 0
            && m.Metrics.skipped_seqnos <= bound
            && m.Metrics.fresh_rejected = 0
            && m.Metrics.reused_seqnos = 0
          in
          worst := max !worst m.Metrics.skipped_seqnos;
          Format.printf "%6d %8d %12s %10d %8d %10d %6s@." kp phase label
            m.Metrics.skipped_seqnos bound m.Metrics.fresh_rejected
            (if ok then "yes" else "NO"))
        [ (0, "in-flight"); (kp / 4, "in-flight"); (kp / 2, "done"); (kp - 1, "done") ])
    [ 25; 50; 100; 200 ];
  Format.printf "@.worst skipped observed: %d (every row within its 2Kp bound)@." !worst;
  (* leap ablation mid-cycle (12 messages after a SAVE trigger, while
     that SAVE is still in flight — the case the 2K leap exists for) *)
  Format.printf "@.leap ablation (Kp=25, reset mid-SAVE, 12 messages into the cycle):@.";
  Format.printf "%12s %10s %10s@." "leap" "skipped" "reused";
  List.iter
    (fun (leap, label) ->
      let scenario =
        {
          (operating_point ()) with
          protocol = Protocol.save_fetch ~leap_p:leap ~leap_q:50 ~kp:25 ~kq:25 ();
          resets =
            Reset_schedule.single
              ~at:(Time.add (us ((1000 + 12) * 4)) (us 2))
              ~downtime:(ms 1) Sender;
        }
      in
      let m = (Harness.run scenario).Harness.metrics in
      Format.printf "%12s %10d %10d%s@." label m.Metrics.skipped_seqnos
        m.Metrics.reused_seqnos
        (if m.Metrics.reused_seqnos > 0 then "  <- UNSOUND (numbers reused)" else ""))
    [ (50, "2K (paper)"); (25, "K"); (0, "0") ]

(* ------------------------------------------------------------------ *)
(* E2 *)

let e2 () =
  Format.printf
    "Receiver reset (instant reboot) + replay-all attack after recovery.@.\
     Paper: fresh discards <= 2Kq, zero replayed messages accepted@.\
     (Figure 2, Thm ii).@.@.";
  Format.printf "%6s %8s %12s %10s %12s %6s@." "Kq" "discard" "bound 2Kq" "replay-in"
    "replay-rej" "ok";
  hr ();
  List.iter
    (fun kq ->
      let reset_at = Time.add (us (kq * 40 * 4)) (us 2) in
      let scenario =
        {
          (operating_point ~kq
             ~horizon:(Time.add reset_at (Time.add (ms 5) (us (kq * 40 * 5))))
             ()) with
          resets = Reset_schedule.single ~at:reset_at ~downtime:(us 1) Receiver;
          attack = Harness.Replay_all_at (Time.add (us (kq * 40 * 4)) (ms 1));
        }
      in
      let r = Harness.run scenario in
      let m = r.Harness.metrics in
      let bound = Analysis.max_fresh_discards ~kq in
      let ok =
        m.Metrics.fresh_rejected_undelivered <= bound && m.Metrics.replay_accepted = 0
      in
      Format.printf "%6d %8d %12d %10d %12d %6s@." kq
        m.Metrics.fresh_rejected_undelivered bound m.Metrics.replay_accepted
        m.Metrics.replay_rejected
        (if ok then "yes" else "NO"))
    [ 25; 50; 100; 200 ]

(* ------------------------------------------------------------------ *)
(* E3 *)

let e3 () =
  Format.printf
    "Receiver reset while the sender is idle; the adversary replays the@.\
     entire recorded stream. Paper (Sec. 3 ¶1): without SAVE/FETCH the@.\
     number of accepted replays is unbounded (= all of history).@.@.";
  Format.printf "%12s %14s %14s@." "history x" "volatile" "save/fetch";
  hr ();
  List.iter
    (fun x ->
      let stop = us (x * 4) in
      let accepted protocol =
        let scenario =
          {
            (* horizon long enough for the whole history to be
               re-injected at one replay per 4 us *)
            (operating_point ~horizon:(Time.add (Time.mul stop 2) (ms 10)) ()) with
            protocol;
            sender_stop_at = Some stop;
            resets =
              Reset_schedule.single ~at:(Time.add stop (ms 1)) ~downtime:(ms 1)
                Receiver;
            attack = Harness.Replay_all_at (Time.add stop (ms 3));
          }
        in
        (Harness.run scenario).Harness.metrics.Metrics.replay_accepted
      in
      Format.printf "%12d %14d %14d@." x (accepted Protocol.Volatile)
        (accepted (Protocol.save_fetch ~kp:25 ~kq:25 ())))
    [ 1250; 2500; 5000; 10000 ];
  Format.printf "@.volatile acceptance tracks history (unbounded); SAVE/FETCH is 0.@."

(* ------------------------------------------------------------------ *)
(* E4 *)

let e4 () =
  Format.printf
    "Sender reset mid-stream. Paper (Sec. 3 ¶2): without SAVE/FETCH every@.\
     fresh message up to the old window edge is discarded (unbounded);@.\
     with SAVE/FETCH, none (no reorder).@.@.";
  Format.printf "%16s %14s %14s@." "pre-reset msgs" "volatile" "save/fetch";
  hr ();
  List.iter
    (fun x ->
      let reset_at = Time.add (us (x * 4)) (us 2) in
      let discards protocol =
        let scenario =
          {
            (operating_point ~horizon:(Time.add reset_at (ms 50)) ()) with
            protocol;
            resets = Reset_schedule.single ~at:reset_at ~downtime:(ms 1) Sender;
          }
        in
        (Harness.run scenario).Harness.metrics.Metrics.fresh_rejected
      in
      Format.printf "%16d %14d %14d@." x (discards Protocol.Volatile)
        (discards (Protocol.save_fetch ~kp:25 ~kq:25 ())))
    [ 1250; 2500; 5000; 10000 ]

(* ------------------------------------------------------------------ *)
(* E5 *)

let e5 () =
  Format.printf
    "Both hosts reset; the adversary replays the newest captured message@.\
     to wedge q's window ahead of p (Sec. 3 ¶3).@.@.";
  Format.printf "%-22s %12s %14s %14s@." "protocol" "wedge-in" "fresh-killed"
    "discard-bound";
  hr ();
  List.iter
    (fun (name, protocol, bound) ->
      let scenario =
        {
          (operating_point ~horizon:(ms 60) ()) with
          protocol;
          resets = Reset_schedule.both ~at:(ms 10) ~downtime:(ms 1) ();
          attack = Harness.Wedge_at (ms 11);
        }
      in
      let m = (Harness.run scenario).Harness.metrics in
      Format.printf "%-22s %12d %14d %14s@." name m.Metrics.replay_accepted
        m.Metrics.fresh_rejected bound)
    [
      ("volatile", Protocol.Volatile, "unbounded");
      ("save/fetch", Protocol.save_fetch ~kp:25 ~kq:25 (), "<= 2K = 50");
      ( "save/fetch+robust",
        Protocol.save_fetch ~robust_receiver:true ~kp:25 ~kq:25 (),
        "<= 2K = 50" );
    ]

(* ------------------------------------------------------------------ *)
(* E6 *)

let e6 () =
  Format.printf
    "Section 4's rule: K must be at least the number of messages that can@.\
     be sent during one SAVE — K >= ceil(T/g). Below the threshold, SAVEs@.\
     are superseded before completing, durable state starves, and a reset@.\
     resumes at stale numbers (reuse).@.@.";
  Format.printf "k_min table (rows: SAVE latency; columns: message gap):@.";
  Format.printf "%10s" "";
  let gaps = [ 1; 2; 4; 8; 16; 40 ] in
  List.iter (fun g -> Format.printf "%8dus" g) gaps;
  Format.printf "@.";
  List.iter
    (fun t_us ->
      Format.printf "%8dus" t_us;
      List.iter
        (fun g ->
          Format.printf "%10d" (Analysis.k_min ~save_latency:(us t_us) ~message_gap:(us g)))
        gaps;
      Format.printf "@.")
    [ 25; 50; 100; 200; 500 ];
  Format.printf "@.paper's operating point: T=100us, g=4us -> k_min = %d@."
    (Analysis.k_min ~save_latency:(us 100) ~message_gap:(us 4));
  Format.printf
    "@.simulation at that point, K swept across the threshold (sender reset@.\
     every 10 ms; reuse of a sequence number marks an unsound K):@.@.";
  Format.printf "%6s %12s %12s %10s %10s@." "K" "saves-done" "saves-lost" "skipped"
    "reused";
  hr ();
  List.iter
    (fun k ->
      let scenario =
        {
          (operating_point ~horizon:(ms 60) ()) with
          protocol = Protocol.save_fetch ~kp:k ~kq:25 ();
          resets = Reset_schedule.periodic ~every:(ms 10) ~downtime:(ms 1) ~count:4 Sender;
        }
      in
      let r = Harness.run scenario in
      let m = r.Harness.metrics in
      Format.printf "%6d %12d %12d %10d %10d%s@." k r.Harness.saves_completed_p
        r.Harness.saves_lost_p m.Metrics.skipped_seqnos m.Metrics.reused_seqnos
        (if m.Metrics.reused_seqnos > 0 then "  <- UNSOUND" else ""))
    [ 5; 10; 15; 20; 24; 25; 50; 100 ]

(* ------------------------------------------------------------------ *)
(* E7 *)

let e7 () =
  Format.printf
    "Recovery cost after a reset: FETCH + one blocking SAVE per SA, vs the@.\
     IETF alternative of renegotiating every SA (4 messages + 4 asymmetric@.\
     ops each). Closed-form model (IKE-lite: 2ms/op compute, 10ms RTT):@.@.";
  Format.printf "%8s %18s %14s %18s %14s@." "SAs" "reestablish" "msgs" "save/fetch"
    "msgs";
  hr ();
  let cost = Resets_ipsec.Ike.default_cost in
  List.iter
    (fun n ->
      let re = Analysis.reestablish_recovery_time ~cost ~sa_count:n in
      let sf = Analysis.save_fetch_recovery_time ~save_latency:(us 100) ~sa_count:n in
      Format.printf "%8d %18s %14d %18s %14d@." n
        (Format.asprintf "%a" Time.pp re)
        (Analysis.reestablish_message_count ~sa_count:n)
        (Format.asprintf "%a" Time.pp sf)
        (Analysis.save_fetch_message_count ~sa_count:n))
    [ 1; 4; 16; 64; 256 ];
  Format.printf
    "@.measured end-to-end (single SA, receiver reboots for 1 ms, traffic at@.\
     4 us/message):@.@.";
  Format.printf "%-22s %16s %16s %14s@." "protocol" "disruption" "msgs-lost"
    "replays-in";
  hr ();
  List.iter
    (fun (name, protocol) ->
      let scenario =
        {
          (operating_point ~horizon:(ms 80) ()) with
          protocol;
          resets = Reset_schedule.single ~at:(ms 10) ~downtime:(ms 1) Receiver;
        }
      in
      let r = Harness.run scenario in
      let m = r.Harness.metrics in
      let disruption =
        if Resets_util.Stats.Sample.count m.Metrics.disruption_times = 0 then "n/a"
        else
          Format.asprintf "%.3f ms"
            (1e3 *. Resets_util.Stats.Sample.mean m.Metrics.disruption_times)
      in
      Format.printf "%-22s %16s %16d %14d@." name disruption
        m.Metrics.dropped_host_down m.Metrics.replay_accepted)
    [
      ("save/fetch", Protocol.save_fetch ~kp:25 ~kq:25 ());
      ("reestablish (IETF)", Protocol.Reestablish { cost });
      ("volatile (unsafe)", Protocol.Volatile);
    ];
  (* ground the IKE compute model in real work *)
  let t0 = Unix.gettimeofday () in
  let iterations = 20 in
  for _ = 1 to iterations do
    ignore (Resets_crypto.Kdf.stretch ~iterations:cost.Resets_ipsec.Ike.kdf_iterations "x")
  done;
  let per = (Unix.gettimeofday () -. t0) /. float_of_int iterations *. 1e3 in
  Format.printf
    "@.(one IKE-lite asymmetric op really executes %d hash iterations:@.\
     measured %.2f ms wall-clock on this machine)@."
    cost.Resets_ipsec.Ike.kdf_iterations per;
  Format.printf
    "@.multi-SA host, simulated end-to-end (shared disk; host reboot resets@.\
     every SA at once; 'coalesced' is our extension — one write persists all@.\
     edges):@.@.";
  Format.printf "%6s %-14s %14s %14s %12s %12s@." "SAs" "discipline" "ready"
    "delivering" "msgs-lost" "disk-writes";
  hr ();
  List.iter
    (fun n ->
      let cfg = { Multi_sa.default_config with Multi_sa.sa_count = n } in
      List.iter
        (fun (name, d) ->
          let o = Multi_sa.run d cfg in
          Format.printf "%6d %-14s %14s %13s%s %12d %12d@." n name
            (Format.asprintf "%a" Time.pp o.Multi_sa.ready_time)
            (Format.asprintf "%a" Time.pp o.Multi_sa.recovery_time)
            (if o.Multi_sa.recovered_fully then " " else ">")
            o.Multi_sa.messages_lost o.Multi_sa.disk_writes)
        [
          ("per-sa", `Save_fetch_per_sa);
          ("coalesced", `Save_fetch_coalesced);
          ("reestablish", `Reestablish);
        ])
    [ 1; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* E8 *)

let e8 () =
  Format.printf
    "The K trade-off: persistent-write amplification (1/K per message)@.\
     versus worst-case loss on reset (2K numbers). Background SAVEs never@.\
     block traffic, so throughput is flat; the robust receiver's blocking@.\
     catch-up is the exception, shown in the second table.@.@.";
  Format.printf "%6s %10s %14s %16s %12s@." "K" "sent" "writes-begun" "writes/msg"
    "loss-bound";
  hr ();
  List.iter
    (fun k ->
      let scenario = operating_point ~kp:k ~kq:k ~horizon:(ms 40) () in
      let r = Harness.run scenario in
      let m = r.Harness.metrics in
      let begun = r.Harness.saves_completed_p + r.Harness.saves_lost_p in
      Format.printf "%6d %10d %14d %16.5f %12d@." k m.Metrics.sent begun
        (float_of_int begun /. float_of_int (max 1 m.Metrics.sent))
        (2 * k))
    [ 25; 50; 100; 200; 400 ];
  Format.printf
    "@.what robustness costs: the bounded-slide receiver refuses to let the@.\
     window edge outrun durable state by more than its leap, so a Kq below@.\
     k_min (whose periodic SAVEs starve) throttles delivery to disk speed.@.\
     The paper's receiver keeps full throughput there — by giving up the@.\
     guarantee (cf. E11):@.@.";
  Format.printf "%6s %14s %14s@." "Kq" "paper recv" "robust recv";
  hr ();
  List.iter
    (fun kq ->
      let run robust =
        let scenario =
          {
            (operating_point ~horizon:(ms 40) ()) with
            protocol = Protocol.save_fetch ~robust_receiver:robust ~kp:25 ~kq ();
            resets =
              Reset_schedule.periodic ~every:(ms 10) ~downtime:(ms 1) ~count:3 Sender;
          }
        in
        (Harness.run scenario).Harness.metrics.Metrics.delivered
      in
      Format.printf "%6d %14d %14d%s@." kq (run false) (run true)
        (if kq < 25 then "   (Kq < k_min)" else ""))
    [ 2; 5; 12; 25; 100 ]

(* ------------------------------------------------------------------ *)
(* E9 *)

let e9 () =
  Format.printf
    "w-Delivery (Sec. 2): the window forgives reordering below degree w@.\
     and discards above it. 20%% of packets take a slow path that delays@.\
     them by the given number of message slots.@.@.";
  Format.printf "%8s %12s %14s %14s %14s@." "w" "delay(msgs)" "max-displace"
    "fresh-killed" "expected";
  hr ();
  List.iter
    (fun w ->
      List.iter
        (fun factor ->
          let delay_msgs = max 1 (int_of_float (float_of_int w *. factor)) in
          let scenario =
            {
              (operating_point ~horizon:(ms 40) ()) with
              window = w;
              faults =
                {
                  Link.no_faults with
                  reorder_prob = 0.2;
                  reorder_delay = us (delay_msgs * 4);
                };
            }
          in
          let m = (Harness.run scenario).Harness.metrics in
          Format.printf "%8d %12d %14d %14d %14s@." w delay_msgs
            m.Metrics.max_displacement m.Metrics.fresh_rejected_undelivered
            (if float_of_int delay_msgs < float_of_int w *. 0.8 then "0 (deg < w)"
             else "> 0 (deg >= w)"))
        [ 0.25; 0.5; 1.5; 3.0 ])
    [ 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* E10 *)

let e10 () =
  Format.printf
    "Prolonged resets over a bidirectional pair (Sec. 6): the survivor@.\
     detects death, keeps the SA for a bounded period, and validates the@.\
     returning peer's announcement against the window's right edge.@.\
     (keep-alive = 50 ms)@.@.";
  Format.printf "%10s %14s %8s %10s %12s %14s@." "outage" "detected" "SA" "announce"
    "replay-rej" "convergence";
  hr ();
  List.iter
    (fun outage_ms ->
      let o =
        Bidirectional.run ~replay_announce:true ~reset_at:(ms 10)
          ~downtime:(ms outage_ms)
          ~horizon:(ms (120 + outage_ms))
          Bidirectional.default_config
      in
      Format.printf "%8dms %14s %8s %10s %12s %14s@." outage_ms
        (match o.Bidirectional.death_detected_at with
        | Some t -> Format.asprintf "%a" Time.pp t
        | None -> "never")
        (if o.Bidirectional.sa_survived then "kept" else "torn")
        (if o.Bidirectional.announce_accepted then "accepted" else "no")
        (if o.Bidirectional.replayed_announce_rejected then "yes" else "NO")
        (match o.Bidirectional.convergence_time with
        | Some t -> Format.asprintf "%a" Time.pp t
        | None -> "never"))
    [ 5; 20; 40; 60; 80 ]

(* ------------------------------------------------------------------ *)
(* E11 *)

let e11 () =
  Format.printf
    "Bounded model checking of the APN models (Sec. 5 claims as@.\
     invariants; adversary = record/replay; small bounds).@.@.";
  Format.printf "%-44s %-12s %10s@." "model / fault budget" "outcome" "states";
  hr ();
  let open Resets_apn in
  let row name sys invariant =
    let t0 = Unix.gettimeofday () in
    let outcome = Explorer.explore ~max_states:600_000 ~invariant sys in
    let dt = Unix.gettimeofday () -. t0 in
    let verdict, states =
      match outcome with
      | Explorer.Exhausted { states } -> ("holds", states)
      | Explorer.Limit_reached { states } -> ("holds*", states)
      | Explorer.Violation { states; _ } -> ("VIOLATED", states)
    in
    Format.printf "%-44s %-12s %10d   (%.1fs)@." name verdict states dt;
    outcome
  in
  let b ~p ~q = Models.{ s_max = 3; p_resets = p; q_resets = q } in
  ignore
    (row "original, q resets, adversary"
       (Models.original_system ~bounds:(b ~p:0 ~q:1) ~capacity:2 ~adversary:true ~w:2 ())
       Models.discrimination_holds);
  ignore
    (row "augmented, p resets, adversary"
       (Models.augmented_system ~bounds:(b ~p:1 ~q:0) ~capacity:2 ~adversary:true ~kp:1
          ~kq:1 ~w:2 ())
       Models.all_section5_invariants);
  ignore
    (row "augmented, q resets, no adversary"
       (Models.augmented_system ~bounds:(b ~p:0 ~q:2) ~capacity:6 ~kp:1 ~kq:1 ~w:2 ())
       Models.all_section5_invariants);
  (match
     row "augmented, both reset, adversary"
       (Models.augmented_system ~bounds:(b ~p:1 ~q:1) ~capacity:2 ~adversary:true ~kp:1
          ~kq:1 ~w:2 ())
       Models.all_section5_invariants
   with
  | Explorer.Violation { trace; _ } ->
    Format.printf "  counterexample: %s@." (String.concat " ; " trace)
  | Explorer.Exhausted _ | Explorer.Limit_reached _ -> ());
  ignore
    (row "robust receiver, both reset, adversary"
       (Models.augmented_system ~bounds:(b ~p:1 ~q:1) ~capacity:2 ~adversary:true
          ~robust:true ~kp:1 ~kq:1 ~w:2 ())
       Models.all_section5_invariants);
  (* the leap itself, machine-checked to be tight *)
  let leap_bounds = Models.{ s_max = 5; p_resets = 1; q_resets = 0 } in
  List.iter
    (fun (name, leap) ->
      ignore
        (row name
           (Models.augmented_system ~bounds:leap_bounds ~capacity:2 ?leap_p:leap ~kp:2
              ~kq:2 ~w:2 ())
           Models.sender_freshness_holds))
    [
      ("sender leap = 2K (the paper's)", None);
      ("sender leap = K (ablation)", Some 2);
      ("sender leap = 0 (ablation)", Some 0);
    ];
  Format.printf
    "@.the 'both reset' violation is the jump corner the paper's Section 5@.\
     leaves to the reader; the robust (bounded-slide) receiver closes it.@.\
     The leap rows confirm 2K is tight: K and 0 are refuted.@."

(* ------------------------------------------------------------------ *)
(* E12 *)

let e12 () =
  Format.printf
    "Planned SA rollover (the paper's 'lifetimes of the keys' attribute):@.\
     make-before-break renegotiates a margin before expiry and keeps both@.\
     epochs installed until in-flight traffic drains; hard expiry stops and@.\
     renegotiates. Old epochs' persisted counters are retired either way.@.@.";
  Format.printf "%-20s %8s %10s %8s %14s %10s@." "strategy" "rekeys" "delivered"
    "lost" "max-gap" "keys-live";
  hr ();
  List.iter
    (fun (name, strategy) ->
      let o = Rekey.run strategy Rekey.default_config in
      Format.printf "%-20s %8d %10d %8d %14s %10d@." name o.Rekey.rekeys_completed
        o.Rekey.delivered o.Rekey.messages_lost
        (Format.asprintf "%a" Time.pp o.Rekey.max_delivery_gap)
        o.Rekey.persisted_keys_live)
    [
      ("make-before-break", Rekey.Make_before_break);
      ("hard-expiry", Rekey.Hard_expiry);
    ];
  Format.printf
    "@.make-before-break's worst gap is one message slot; hard expiry pays@.\
     the full handshake per epoch.@."

(* ------------------------------------------------------------------ *)
(* E13 *)

let e13 () =
  Format.printf
    "Why the SAVE interval is counted in messages, not time (Sec. 4):@.\
     \"the rate of message generation may change over time. ... measuring@.\
     the interval in terms of time leads to wasteful SAVEs\". Bursty@.\
     traffic (bursts of 1000 messages at 4 us, then 20 ms idle), sender@.\
     reset mid-burst at 50 ms:@.@.";
  Format.printf "%-22s %12s %14s %10s %10s@." "trigger" "writes" "writes/msg"
    "skipped" "reused";
  hr ();
  let run save_timer_p =
    let scenario =
      {
        (operating_point ~horizon:(ms 100) ()) with
        protocol = Protocol.save_fetch ?save_timer_p ~kp:25 ~kq:25 ();
        traffic = Harness.Bursty { burst_length = 1000; off_duration = ms 20 };
        resets = Reset_schedule.single ~at:(ms 50) ~downtime:(ms 1) Sender;
      }
    in
    Harness.run scenario
  in
  List.iter
    (fun (name, timer) ->
      let r = run timer in
      let m = r.Harness.metrics in
      let writes = r.Harness.saves_completed_p + r.Harness.saves_lost_p in
      Format.printf "%-22s %12d %14.5f %10d %10d%s@." name writes
        (float_of_int writes /. float_of_int (max 1 m.Metrics.sent))
        m.Metrics.skipped_seqnos m.Metrics.reused_seqnos
        (if m.Metrics.reused_seqnos > 0 then "  <- UNSOUND" else ""))
    [
      ("count, K=25 (paper)", None);
      ("timer, 100us", Some (us 100));
      ("timer, 1ms", Some (ms 1));
      ("timer, 10ms", Some (ms 10));
    ];
  Format.printf
    "@.a timer long enough to be cheap falls more than 2K behind during a@.\
     burst, and the reset resumes on used numbers (reuse). And on slow,@.\
     steady traffic (one message per 2 ms) the short timer that was safe@.\
     above wastes writes — one per message — where the count rule amortizes:@.@.";
  Format.printf "%-22s %12s %14s@." "trigger" "writes" "writes/msg";
  hr ();
  let run_slow save_timer_p =
    let scenario =
      {
        (operating_point ~horizon:(ms 400) ()) with
        protocol = Protocol.save_fetch ?save_timer_p ~kp:25 ~kq:25 ();
        message_gap = ms 2;
      }
    in
    Harness.run scenario
  in
  List.iter
    (fun (name, timer) ->
      let r = run_slow timer in
      let m = r.Harness.metrics in
      let writes = r.Harness.saves_completed_p + r.Harness.saves_lost_p in
      Format.printf "%-22s %12d %14.5f@." name writes
        (float_of_int writes /. float_of_int (max 1 m.Metrics.sent)))
    [ ("count, K=25 (paper)", None); ("timer, 100us", Some (us 100)) ]

(* ------------------------------------------------------------------ *)
(* MICRO *)

let micro () =
  Format.printf
    "Microbenchmarks of the per-packet hot paths (bechamel, OLS ns/run).@.@.";
  let open Bechamel in
  let open Resets_ipsec in
  let sa = Sa.derive_params ~spi:0x9l ~secret:"bench" () in
  let payload = String.make 256 'x' in
  let packet = Esp.encap ~sa ~seq:1 ~payload in
  let make_window impl =
    let w = Replay_window.create impl ~w:64 in
    let counter = ref 0 in
    fun () ->
      incr counter;
      ignore (Replay_window.admit w !counter)
  in
  let tests =
    Test.make_grouped ~name:"micro"
      [
        Test.make ~name:"window-admit-paper"
          (Staged.stage (make_window Replay_window.Paper_impl));
        Test.make ~name:"window-admit-bitmap"
          (Staged.stage (make_window Replay_window.Bitmap_impl));
        Test.make ~name:"window-admit-block"
          (Staged.stage (make_window Replay_window.Block_impl));
        Test.make ~name:"esp-encap-256B"
          (Staged.stage (fun () -> ignore (Esp.encap ~sa ~seq:7 ~payload)));
        Test.make ~name:"esp-decap-256B"
          (Staged.stage (fun () -> ignore (Esp.decap ~sa packet)));
        Test.make ~name:"hmac-sha256-256B"
          (Staged.stage (fun () -> ignore (Resets_crypto.Hmac.mac ~key:"k" payload)));
        Test.make ~name:"sha256-1KiB"
          (let block = String.make 1024 'y' in
           Staged.stage (fun () -> ignore (Resets_crypto.Sha256.digest block)));
        Test.make ~name:"chacha20-256B"
          (let nonce = String.make 12 '\x01' in
           let key = String.make 32 '\x02' in
           Staged.stage (fun () -> ignore (Resets_crypto.Chacha20.crypt ~key ~nonce payload)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  Format.printf "%-28s %14s@." "operation" "ns/run";
  hr ();
  List.iter
    (fun (name, ols) ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> Format.asprintf "%10.1f" x
        | Some [] | None -> "?"
      in
      Format.printf "%-28s %14s@." name estimate)
    (List.sort compare rows)

let () =
  Format.printf "Convergence of IPsec in Presence of Resets — experiment harness@.";
  section "E1" "sender reset: loss bounded by 2Kp (Fig. 1, Thm i)" e1;
  section "E2" "receiver reset: discards bounded by 2Kq (Fig. 2, Thm ii)" e2;
  section "E3" "unbounded replay acceptance without SAVE/FETCH (Sec. 3.1)" e3;
  section "E4" "unbounded fresh discards without SAVE/FETCH (Sec. 3.2)" e4;
  section "E5" "the wedge attack after a double reset (Sec. 3.3)" e5;
  section "E6" "the SAVE-interval rule K >= ceil(T/g) (Sec. 4)" e6;
  section "E7" "recovery cost: SAVE/FETCH vs re-establishment" e7;
  section "E8" "SAVE overhead and the robustness trade-off" e8;
  section "E9" "w-Delivery under reordering (Sec. 2)" e9;
  section "E10" "prolonged resets, bidirectional recovery (Sec. 6)" e10;
  section "E11" "bounded model checking of the APN models (Sec. 5)" e11;
  section "E12" "planned SA rollover (lifetimes)" e12;
  section "E13" "message-counted vs timer-based SAVE intervals (Sec. 4)" e13;
  section "MICRO" "hot-path microbenchmarks" micro;
  Format.printf "@.done.@."
