(* Tests for the closed-form analysis (Section 4's K rule and Section
   5's bounds), the protocol descriptors and the metrics accounting. *)

open Resets_sim
open Resets_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Analysis: bounds *)

let test_bounds_scale_linearly () =
  check_int "sender gap" 50 (Analysis.max_sender_gap ~kp:25);
  check_int "lost" 50 (Analysis.max_lost_seqnos ~kp:25);
  check_int "receiver gap" 8 (Analysis.max_receiver_gap ~kq:4);
  check_int "discards" 8 (Analysis.max_fresh_discards ~kq:4);
  check_int "leap" 2 (Analysis.leap ~k:1)

let test_k_min_paper_example () =
  (* "a write-to-file operation takes 100 µs and sending a 1000-byte
     message takes 4 µs ... we can set the interval ... to be at least
     25." *)
  check_int "paper's 25" 25
    (Analysis.k_min ~save_latency:(Time.of_us 100) ~message_gap:(Time.of_us 4))

let test_k_min_rounding () =
  check_int "exact division" 10
    (Analysis.k_min ~save_latency:(Time.of_us 100) ~message_gap:(Time.of_us 10));
  check_int "rounds up" 34
    (Analysis.k_min ~save_latency:(Time.of_us 100) ~message_gap:(Time.of_ns 3_000L));
  check_int "slow traffic" 1
    (Analysis.k_min ~save_latency:(Time.of_us 100) ~message_gap:(Time.of_ms 1))

let test_k_min_invalid () =
  Alcotest.check_raises "zero gap"
    (Invalid_argument "Analysis.k_min: message gap must be positive") (fun () ->
      ignore (Analysis.k_min ~save_latency:(Time.of_us 100) ~message_gap:Time.zero))

let test_write_fraction () =
  Alcotest.(check (float 1e-9)) "1/25" 0.04 (Analysis.save_write_fraction ~k:25);
  Alcotest.check_raises "k=0"
    (Invalid_argument "Analysis.save_write_fraction: k must be positive") (fun () ->
      ignore (Analysis.save_write_fraction ~k:0))

let test_sender_loss_exact () =
  (* Figure 1, both branches, every phase. *)
  let kp = 5 in
  for phase = 0 to kp - 1 do
    let in_flight = Analysis.sender_loss ~kp ~reset_phase:phase ~save_in_flight:true in
    let completed = Analysis.sender_loss ~kp ~reset_phase:phase ~save_in_flight:false in
    check_bool "in-flight loss within (0, 2Kp]" true (in_flight > 0 && in_flight <= 2 * kp);
    check_bool "completed loss within (0, 2Kp]" true (completed > 0 && completed <= 2 * kp);
    check_int "branches differ by Kp" kp (completed - in_flight)
  done;
  (* worst case: reset immediately after a completed SAVE *)
  check_int "worst case = 2Kp" 10
    (Analysis.sender_loss ~kp ~reset_phase:0 ~save_in_flight:false);
  Alcotest.check_raises "phase range"
    (Invalid_argument "Analysis.sender_loss: reset_phase must be in [0, kp)") (fun () ->
      ignore (Analysis.sender_loss ~kp ~reset_phase:5 ~save_in_flight:true))

let test_receiver_discards_exact () =
  let kq = 7 in
  for phase = 0 to kq - 1 do
    let d = Analysis.receiver_discards ~kq ~reset_phase:phase ~save_in_flight:true in
    check_bool "bounded" true (d <= Analysis.max_fresh_discards ~kq)
  done;
  check_int "worst case = 2Kq" 14
    (Analysis.receiver_discards ~kq ~reset_phase:0 ~save_in_flight:false)

let test_recovery_cost_model () =
  let cost = Resets_ipsec.Ike.default_cost in
  let re1 = Analysis.reestablish_recovery_time ~cost ~sa_count:1 in
  let re64 = Analysis.reestablish_recovery_time ~cost ~sa_count:64 in
  Alcotest.(check int64) "linear in SA count" (Int64.mul (Time.to_ns re1) 64L)
    (Time.to_ns re64);
  check_int "4 messages per SA" 256 (Analysis.reestablish_message_count ~sa_count:64);
  check_int "save/fetch sends nothing" 0 (Analysis.save_fetch_message_count ~sa_count:64);
  let sf = Analysis.save_fetch_recovery_time ~save_latency:(Time.of_us 100) ~sa_count:64 in
  check_bool "save/fetch orders of magnitude cheaper" true Time.(sf < re1)

(* ------------------------------------------------------------------ *)
(* Protocol descriptors *)

let test_protocol_defaults () =
  match Protocol.save_fetch ~kp:25 ~kq:10 () with
  | Protocol.Save_fetch { sender; receiver; robust_receiver; wakeup_buffer } ->
    check_int "kp" 25 sender.Protocol.k;
    check_int "kq" 10 receiver.Protocol.k;
    check_int "leap p" 50 (Protocol.resolved_leap sender);
    check_int "leap q" 20 (Protocol.resolved_leap receiver);
    Alcotest.(check int64) "paper save latency" 100_000L
      (Time.to_ns sender.Protocol.save_latency);
    check_bool "not robust by default" false robust_receiver;
    check_bool "buffers by default" true wakeup_buffer
  | Protocol.Volatile | Protocol.Reestablish _ -> Alcotest.fail "wrong constructor"

let test_protocol_leap_override () =
  match Protocol.save_fetch ~leap_p:0 ~leap_q:7 ~kp:5 ~kq:5 () with
  | Protocol.Save_fetch { sender; receiver; _ } ->
    check_int "leap p overridden" 0 (Protocol.resolved_leap sender);
    check_int "leap q overridden" 7 (Protocol.resolved_leap receiver)
  | Protocol.Volatile | Protocol.Reestablish _ -> Alcotest.fail "wrong constructor"

let test_protocol_validation () =
  Alcotest.check_raises "k=0" (Invalid_argument "Protocol.persistence: k must be positive")
    (fun () -> ignore (Protocol.persistence ~k:0 ()))

let test_protocol_to_string () =
  Alcotest.(check string) "volatile" "volatile" (Protocol.to_string Protocol.Volatile);
  Alcotest.(check string) "save-fetch" "save-fetch(Kp=1, Kq=2)"
    (Protocol.to_string (Protocol.save_fetch ~kp:1 ~kq:2 ()));
  Alcotest.(check string) "robust tag" "save-fetch(Kp=1, Kq=2, robust)"
    (Protocol.to_string (Protocol.save_fetch ~robust_receiver:true ~kp:1 ~kq:2 ()))

(* ------------------------------------------------------------------ *)
(* Metrics accounting *)

let test_metrics_delivery_accounting () =
  let m = Metrics.create () in
  Metrics.record_delivery m ~seq:5 ~replayed:false;
  Metrics.record_delivery m ~seq:6 ~replayed:false;
  Metrics.record_delivery m ~seq:5 ~replayed:true;
  check_int "delivered" 3 m.Metrics.delivered;
  check_int "distinct" 2 (Metrics.delivered_distinct m);
  check_int "duplicates" 1 m.Metrics.duplicate_deliveries;
  check_int "replay accepted" 1 m.Metrics.replay_accepted;
  check_int "max" 6 (Metrics.max_delivered_seq m);
  check_int "count of 5" 2 (Metrics.delivery_count m ~seq:5)

let test_metrics_rejection_accounting () =
  let m = Metrics.create () in
  Metrics.record_rejection m ~seq:9 ~replayed:true;
  check_int "replay rejected" 1 m.Metrics.replay_rejected;
  Metrics.record_rejection m ~seq:9 ~replayed:false;
  check_int "fresh rejected" 1 m.Metrics.fresh_rejected;
  check_int "undelivered" 1 m.Metrics.fresh_rejected_undelivered;
  Metrics.record_delivery m ~seq:10 ~replayed:false;
  Metrics.record_rejection m ~seq:10 ~replayed:false;
  check_int "already-delivered rejection not undelivered" 1
    m.Metrics.fresh_rejected_undelivered;
  check_int "but counted as fresh rejection" 2 m.Metrics.fresh_rejected

let test_metrics_epochs_isolate_sequence_spaces () =
  let m = Metrics.create () in
  Metrics.record_delivery m ~seq:1 ~replayed:false;
  Metrics.bump_epoch m;
  Metrics.record_delivery m ~seq:1 ~replayed:false;
  check_int "no cross-epoch duplicate" 0 m.Metrics.duplicate_deliveries;
  check_int "fresh count in new epoch" 1 (Metrics.delivery_count m ~seq:1)

(* ------------------------------------------------------------------ *)
(* Convergence verdicts (direct) *)

let clean_scenario =
  {
    Harness.default with
    horizon = Time.of_ms 5;
    protocol = Protocol.save_fetch ~kp:25 ~kq:25 ();
  }

let test_verdict_holds_on_clean_run () =
  let r = Harness.run clean_scenario in
  let v = Convergence.check ~scenario:clean_scenario r in
  check_bool "holds" true (Convergence.holds v);
  check_bool "every component" true
    (v.Convergence.no_replay_accepted && v.Convergence.no_duplicate_delivery
   && v.Convergence.no_seqno_reuse && v.Convergence.skipped_within_bound
   && v.Convergence.discards_within_bound && v.Convergence.delivery_resumed)

let test_verdict_bounds_are_per_reset () =
  (* two sender resets allow up to 2 * 2Kp skipped numbers *)
  let scenario =
    {
      clean_scenario with
      Harness.horizon = Time.of_ms 30;
      resets =
        Resets_workload.Reset_schedule.periodic ~every:(Time.of_ms 8)
          ~downtime:(Time.of_ms 1) ~count:2 Resets_workload.Reset_schedule.Sender;
    }
  in
  let r = Harness.run scenario in
  let v = Convergence.check ~scenario r in
  check_bool "skipped within 2 resets' bound" true v.Convergence.skipped_within_bound;
  check_bool "holds overall" true (Convergence.holds v)

let test_verdict_pp_mentions_failures () =
  let r = Harness.run clean_scenario in
  let v = Convergence.check ~scenario:clean_scenario r in
  let text = Format.asprintf "%a" Convergence.pp v in
  check_bool "prints ok flags" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 2 <= String.length text && (String.sub text i 2 = "ok" || contains (i + 1))
    in
    contains 0)

let () =
  Alcotest.run "analysis"
    [
      ( "bounds",
        [
          Alcotest.test_case "linear scaling" `Quick test_bounds_scale_linearly;
          Alcotest.test_case "paper's K=25" `Quick test_k_min_paper_example;
          Alcotest.test_case "k_min rounding" `Quick test_k_min_rounding;
          Alcotest.test_case "k_min invalid" `Quick test_k_min_invalid;
          Alcotest.test_case "write fraction" `Quick test_write_fraction;
          Alcotest.test_case "sender loss exact" `Quick test_sender_loss_exact;
          Alcotest.test_case "receiver discards exact" `Quick test_receiver_discards_exact;
          Alcotest.test_case "recovery cost model" `Quick test_recovery_cost_model;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "defaults" `Quick test_protocol_defaults;
          Alcotest.test_case "leap override" `Quick test_protocol_leap_override;
          Alcotest.test_case "validation" `Quick test_protocol_validation;
          Alcotest.test_case "to_string" `Quick test_protocol_to_string;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "delivery accounting" `Quick test_metrics_delivery_accounting;
          Alcotest.test_case "rejection accounting" `Quick test_metrics_rejection_accounting;
          Alcotest.test_case "epoch isolation" `Quick
            test_metrics_epochs_isolate_sequence_spaces;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "clean run holds" `Quick test_verdict_holds_on_clean_run;
          Alcotest.test_case "per-reset bounds" `Quick test_verdict_bounds_are_per_reset;
          Alcotest.test_case "pretty printer" `Quick test_verdict_pp_mentions_failures;
        ] );
    ]
