(* Extended sequence numbers (RFC 4304-style inference) and the
   multi-SA recovery harness. *)

open Resets_ipsec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let epoch = Esn.epoch

(* ------------------------------------------------------------------ *)
(* infer: the two RFC cases *)

let test_low_high_split () =
  let full = (3 * epoch) + 17 in
  check_int "low" 17 (Esn.low_of full);
  check_int "high" 3 (Esn.high_of full)

let test_case_a_in_window () =
  (* edge mid-epoch: same-epoch lows map to the current epoch *)
  let edge = epoch + 1000 in
  check_int "at edge" edge (Esn.infer ~edge ~w:64 ~seq_low:1000);
  check_int "in window" (epoch + 990) (Esn.infer ~edge ~w:64 ~seq_low:990);
  check_int "left edge" (epoch + 937) (Esn.infer ~edge ~w:64 ~seq_low:937)

let test_case_a_future_same_epoch () =
  let edge = epoch + 1000 in
  check_int "just ahead" (epoch + 1001) (Esn.infer ~edge ~w:64 ~seq_low:1001);
  check_int "far ahead"
    (epoch + (epoch - 1))
    (Esn.infer ~edge ~w:64 ~seq_low:(epoch - 1))

let test_case_a_below_window_is_next_epoch () =
  (* a low value below the left edge is interpreted as the next epoch
     (the sender wrapped) *)
  let edge = epoch + 1000 in
  check_int "below window wraps forward" ((2 * epoch) + 100)
    (Esn.infer ~edge ~w:64 ~seq_low:100)

let test_case_b_straddling_boundary () =
  (* edge just after a wrap: the window reaches back into the previous
     epoch *)
  let edge = (2 * epoch) + 10 in
  (* low values near 2^32 belong to the previous epoch *)
  check_int "tail of previous epoch"
    (epoch + (epoch - 5))
    (Esn.infer ~edge ~w:64 ~seq_low:(epoch - 5));
  (* small lows are the current epoch *)
  check_int "current epoch" ((2 * epoch) + 3) (Esn.infer ~edge ~w:64 ~seq_low:3);
  check_int "ahead in current epoch" ((2 * epoch) + 500)
    (Esn.infer ~edge ~w:64 ~seq_low:500)

let test_case_b_at_epoch_zero () =
  (* at the very start there is no previous epoch; high lows map below
     zero and classify as stale *)
  let inferred = Esn.infer ~edge:0 ~w:64 ~seq_low:(epoch - 1) in
  check_bool "negative (pre-history)" true (inferred < 0)

let test_case_boundary_exact () =
  (* the exact boundary between cases A and B: tl = w - 1 is case A *)
  let w = 64 in
  let edge = (2 * epoch) + (w - 1) in
  (* lowest in-window low value is 0 *)
  check_int "left edge at low 0" (2 * epoch) (Esn.infer ~edge ~w ~seq_low:0);
  (* a high low value here stays in the current epoch per case A *)
  check_int "high low is same-epoch future"
    ((3 * epoch) - 1)
    (Esn.infer ~edge ~w ~seq_low:(epoch - 1))

let test_infer_validation () =
  Alcotest.check_raises "low out of range"
    (Invalid_argument "Esn.infer: seq_low out of range") (fun () ->
      ignore (Esn.infer ~edge:0 ~w:64 ~seq_low:epoch));
  Alcotest.check_raises "w" (Invalid_argument "Esn.infer: w must be positive")
    (fun () -> ignore (Esn.infer ~edge:0 ~w:0 ~seq_low:0))

let infer_roundtrip_property =
  (* any full number within (edge - w, edge + big) is recovered exactly
     from its low 32 bits *)
  QCheck.Test.make ~name:"infer recovers in-window and near-future numbers" ~count:500
    QCheck.(
      triple (int_range 64 2000) (int_range 1 64)
        (int_range (-60) 1000))
    (fun (edge_low, w, delta) ->
      (* place the edge near an epoch boundary to stress both cases *)
      let edge = (3 * epoch) - 1000 + edge_low in
      let full = edge + delta in
      delta <= -w (* outside the invertible range: skip *)
      || Esn.infer ~edge ~w ~seq_low:(Esn.low_of full) = full)

(* ------------------------------------------------------------------ *)
(* ESN window facade *)

let test_esn_window_in_order () =
  let t = Esn.create ~w:8 () in
  let v1, full1 = Esn.admit_low t 1 in
  check_bool "accept 1" true (Replay_window.verdict_accepts v1);
  check_int "full 1" 1 full1;
  let v2, _ = Esn.admit_low t 1 in
  check_bool "replay rejected" false (Replay_window.verdict_accepts v2)

let test_esn_window_across_wrap () =
  let t = Esn.create ~w:8 () in
  (* jump the edge near the top of epoch 0 via resume *)
  Esn.resume_at t (epoch - 2);
  let v, full = Esn.admit_low t (epoch - 1) in
  check_bool "accept top of epoch" true (Replay_window.verdict_accepts v);
  check_int "full top" (epoch - 1) full;
  (* the next wire value 0 is the start of epoch 1 *)
  let v, full = Esn.admit_low t 0 in
  check_bool "accept across wrap" true (Replay_window.verdict_accepts v);
  check_int "full wrapped" epoch full;
  (* replaying the top of epoch 0 now fails *)
  let v, _ = Esn.admit_low t (epoch - 1) in
  check_bool "old epoch replay rejected" false (Replay_window.verdict_accepts v)

let test_esn_leap_across_epoch () =
  (* SAVE/FETCH interaction: a wakeup leap lands the edge in the next
     epoch; inference must keep working *)
  let t = Esn.create ~w:8 () in
  Esn.resume_at t (epoch + 5) (* recovered edge in epoch 1 *);
  check_int "edge" (epoch + 5) (Esn.edge t);
  let v, full = Esn.admit_low t 6 in
  check_bool "fresh accepted" true (Replay_window.verdict_accepts v);
  check_int "fresh is epoch 1" (epoch + 6) full;
  let v, _ = Esn.admit_low t 5 in
  check_bool "edge replay rejected" false (Replay_window.verdict_accepts v)

let test_esn_volatile_reset () =
  let t = Esn.create ~w:8 () in
  Esn.resume_at t (epoch + 5);
  Esn.volatile_reset t;
  check_int "edge forgotten" 0 (Esn.edge t)

(* ------------------------------------------------------------------ *)
(* ESN ESP framing: ICV over the inferred full sequence number *)

let esn_sa = Sa.derive_params ~spi:0x77l ~secret:"esn-test" ()

let test_esn_esp_roundtrip_epoch0 () =
  let wire = Esp.encap_esn ~sa:esn_sa ~seq:42 ~payload:"hello" in
  match Esp.decap_esn ~sa:esn_sa ~edge:40 ~w:64 wire with
  | Ok (seq, payload) ->
    check_int "seq" 42 seq;
    Alcotest.(check string) "payload" "hello" payload
  | Error e -> Alcotest.failf "decap failed: %s" (Esp.error_to_string e)

let test_esn_esp_roundtrip_high_epoch () =
  let seq = (3 * epoch) + 5 in
  let wire = Esp.encap_esn ~sa:esn_sa ~seq ~payload:"deep" in
  (* receiver's edge is nearby: inference recovers the full number *)
  match Esp.decap_esn ~sa:esn_sa ~edge:(seq - 3) ~w:64 wire with
  | Ok (seq', _) -> check_int "full seq recovered" seq seq'
  | Error e -> Alcotest.failf "decap failed: %s" (Esp.error_to_string e)

let test_esn_esp_wrong_epoch_fails_icv () =
  (* a packet from epoch 3 presented to a receiver whose window sits in
     epoch 1: the inferred number is wrong, so the ICV must fail — the
     RFC-specified behaviour *)
  let seq = (3 * epoch) + 5 in
  let wire = Esp.encap_esn ~sa:esn_sa ~seq ~payload:"deep" in
  check_bool "rejected across epochs" true
    (Result.is_error (Esp.decap_esn ~sa:esn_sa ~edge:(epoch + 1000) ~w:64 wire))

let test_esn_esp_across_wrap () =
  (* traffic spanning an epoch boundary all verifies when the edge
     tracks it *)
  let edge = ref (epoch - 3) in
  for seq = epoch - 2 to epoch + 2 do
    let wire = Esp.encap_esn ~sa:esn_sa ~seq ~payload:"x" in
    (match Esp.decap_esn ~sa:esn_sa ~edge:!edge ~w:64 wire with
    | Ok (seq', _) -> check_int (Printf.sprintf "seq %d" seq) seq seq'
    | Error e -> Alcotest.failf "decap %d failed: %s" seq (Esp.error_to_string e));
    edge := seq
  done

let test_esn_esp_tamper () =
  let wire = Esp.encap_esn ~sa:esn_sa ~seq:7 ~payload:"data" in
  let tampered =
    String.mapi (fun i c -> if i = String.length wire - 1 then Char.chr (Char.code c lxor 1) else c) wire
  in
  check_bool "tamper rejected" true
    (Result.is_error (Esp.decap_esn ~sa:esn_sa ~edge:6 ~w:64 tampered))

let test_esn_esp_malformed () =
  check_bool "short" true
    (Result.is_error (Esp.decap_esn ~sa:esn_sa ~edge:0 ~w:64 "tiny"))

(* ------------------------------------------------------------------ *)
(* Multi-SA recovery *)

open Resets_core
open Resets_sim

let small_cfg n =
  { Multi_sa.default_config with Multi_sa.sa_count = n; horizon = Time.of_ms 60 }

let test_multi_sa_all_disciplines_safe () =
  List.iter
    (fun d ->
      let o = Multi_sa.run d (small_cfg 8) in
      check_int "no duplicates" 0 o.Multi_sa.duplicate_deliveries;
      check_bool "delivered plenty" true (o.Multi_sa.delivered > 1000))
    [ `Save_fetch_per_sa; `Save_fetch_coalesced; `Reestablish ]

let test_multi_sa_per_sa_recovery_scales_linearly () =
  let rt n =
    Time.to_us (Multi_sa.run `Save_fetch_per_sa (small_cfg n)).Multi_sa.ready_time
  in
  let r1 = rt 1 and r32 = rt 32 in
  (* 31 extra serialized 100us blocking saves: about 3.1 ms difference *)
  check_bool "grows with SA count" true (r32 -. r1 > 2000.);
  check_bool "but stays linear-ish" true (r32 -. r1 < 6000.)

let test_multi_sa_coalesced_recovery_flat () =
  let rt n =
    Time.to_us (Multi_sa.run `Save_fetch_coalesced (small_cfg n)).Multi_sa.ready_time
  in
  let r1 = rt 1 and r32 = rt 32 in
  check_bool "flat across SA count" true (Float.abs (r32 -. r1) < 500.)

let test_multi_sa_coalesced_fewer_writes () =
  let writes d = (Multi_sa.run d (small_cfg 32)).Multi_sa.disk_writes in
  let per_sa = writes `Save_fetch_per_sa and coalesced = writes `Save_fetch_coalesced in
  check_bool "order of magnitude fewer writes" true (coalesced * 5 < per_sa)

let test_multi_sa_reestablish_expensive () =
  let o_re = Multi_sa.run `Reestablish (small_cfg 4) in
  let o_sf = Multi_sa.run `Save_fetch_per_sa (small_cfg 4) in
  check_bool "handshakes on the wire" true (o_re.Multi_sa.handshake_messages >= 4);
  check_bool "far slower than save/fetch" true
    (Time.to_us o_re.Multi_sa.ready_time > 5. *. Time.to_us o_sf.Multi_sa.ready_time);
  check_bool "far more messages lost" true
    (o_re.Multi_sa.messages_lost > 5 * o_sf.Multi_sa.messages_lost)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "esn+multisa"
    [
      ( "esn infer",
        [
          Alcotest.test_case "low/high split" `Quick test_low_high_split;
          Alcotest.test_case "case A in window" `Quick test_case_a_in_window;
          Alcotest.test_case "case A future" `Quick test_case_a_future_same_epoch;
          Alcotest.test_case "case A next epoch" `Quick
            test_case_a_below_window_is_next_epoch;
          Alcotest.test_case "case B straddle" `Quick test_case_b_straddling_boundary;
          Alcotest.test_case "case B epoch zero" `Quick test_case_b_at_epoch_zero;
          Alcotest.test_case "case A/B boundary" `Quick test_case_boundary_exact;
          Alcotest.test_case "validation" `Quick test_infer_validation;
          qt infer_roundtrip_property;
        ] );
      ( "esn window",
        [
          Alcotest.test_case "in order" `Quick test_esn_window_in_order;
          Alcotest.test_case "across wrap" `Quick test_esn_window_across_wrap;
          Alcotest.test_case "leap across epoch" `Quick test_esn_leap_across_epoch;
          Alcotest.test_case "volatile reset" `Quick test_esn_volatile_reset;
        ] );
      ( "esn esp framing",
        [
          Alcotest.test_case "roundtrip epoch 0" `Quick test_esn_esp_roundtrip_epoch0;
          Alcotest.test_case "roundtrip high epoch" `Quick
            test_esn_esp_roundtrip_high_epoch;
          Alcotest.test_case "wrong epoch fails ICV" `Quick
            test_esn_esp_wrong_epoch_fails_icv;
          Alcotest.test_case "across wrap" `Quick test_esn_esp_across_wrap;
          Alcotest.test_case "tamper" `Quick test_esn_esp_tamper;
          Alcotest.test_case "malformed" `Quick test_esn_esp_malformed;
        ] );
      ( "multi-sa",
        [
          Alcotest.test_case "all disciplines safe" `Quick
            test_multi_sa_all_disciplines_safe;
          Alcotest.test_case "per-sa scales linearly" `Quick
            test_multi_sa_per_sa_recovery_scales_linearly;
          Alcotest.test_case "coalesced flat" `Quick test_multi_sa_coalesced_recovery_flat;
          Alcotest.test_case "coalesced fewer writes" `Quick
            test_multi_sa_coalesced_fewer_writes;
          Alcotest.test_case "reestablish expensive" `Quick
            test_multi_sa_reestablish_expensive;
        ] );
    ]
