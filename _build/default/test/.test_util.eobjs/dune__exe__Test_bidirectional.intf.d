test/test_bidirectional.mli:
