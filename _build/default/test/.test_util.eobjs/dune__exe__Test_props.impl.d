test/test_props.ml: Alcotest Format Harness Link List Metrics Protocol QCheck QCheck_alcotest Reset_schedule Resets_core Resets_sim Resets_workload String Time
