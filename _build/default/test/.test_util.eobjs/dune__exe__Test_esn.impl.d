test/test_esn.ml: Alcotest Char Esn Esp Float List Multi_sa Printf QCheck QCheck_alcotest Replay_window Resets_core Resets_ipsec Resets_sim Result Sa String Time
