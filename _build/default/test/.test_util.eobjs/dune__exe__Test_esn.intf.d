test/test_esn.mli:
