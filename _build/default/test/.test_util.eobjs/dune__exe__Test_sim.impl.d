test/test_sim.ml: Alcotest Engine Format Link List Prng Resets_sim Resets_util String Time Trace
