test/test_workload.ml: Alcotest Int64 List Printf Prng Reset_schedule Resets_sim Resets_util Resets_workload Time Traffic
