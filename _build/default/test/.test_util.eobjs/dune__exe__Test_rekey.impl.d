test/test_rekey.ml: Alcotest Rekey Resets_core Resets_sim Time
