test/test_apn.ml: Alcotest Array Explorer List Message Models Network Option QCheck QCheck_alcotest Resets_apn Resets_util Result State String System Value
