test/test_ipsec.mli:
