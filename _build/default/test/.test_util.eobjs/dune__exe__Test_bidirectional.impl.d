test/test_bidirectional.ml: Alcotest Bidirectional Resets_core Resets_sim Time
