test/test_util.ml: Alcotest Array Float Fun Gen Heap Hex List Printf Prng QCheck QCheck_alcotest Resets_util Ring Seqno Stats Vec
