test/test_ast.ml: Alcotest Array Ast Explorer Format Interp List Message Models Models_ast Pp Process QCheck QCheck_alcotest Resets_apn Resets_util State String System Value
