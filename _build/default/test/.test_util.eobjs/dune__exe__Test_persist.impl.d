test/test_persist.ml: Alcotest Array Engine File_store Filename Gen Hashtbl Journal List Option Printf QCheck QCheck_alcotest Resets_persist Resets_sim Resets_util Sim_disk Sys Time Unix
