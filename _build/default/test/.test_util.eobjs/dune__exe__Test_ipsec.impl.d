test/test_ipsec.ml: Ah Alcotest Char Dpd Engine Esp Ike List Option QCheck QCheck_alcotest Replay_window Resets_ipsec Resets_sim Resets_util Result Sa Sadb String Time
