test/test_endpoints.ml: Alcotest Engine Esp Link Metrics Packet Receiver Resets_core Resets_ipsec Resets_persist Resets_sim Resets_workload Sa Sender Sim_disk String Time
