test/test_ast.mli:
