test/test_endpoints.mli:
