test/test_analysis.ml: Alcotest Analysis Convergence Format Harness Int64 Metrics Protocol Resets_core Resets_ipsec Resets_sim Resets_workload String Time
