test/test_crypto.ml: Alcotest Chacha20 Ct Hex Hmac Kdf List Printf QCheck QCheck_alcotest Resets_crypto Resets_util Sha256 String
