test/test_harness.ml: Alcotest Convergence Harness Link List Metrics Packet Printf Protocol Reset_schedule Resets_core Resets_ipsec Resets_sim Resets_util Resets_workload Time
