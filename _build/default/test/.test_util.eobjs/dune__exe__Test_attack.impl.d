test/test_attack.ml: Adversary Alcotest Engine Link List Recorder Resets_attack Resets_sim String Time
