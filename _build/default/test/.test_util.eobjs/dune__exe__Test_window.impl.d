test/test_window.ml: Alcotest Array Gen Hashtbl List Printf QCheck QCheck_alcotest Resets_ipsec
