test/test_apn.mli:
