test/test_rekey.mli:
