test/test_window.mli:
