(* APN interpreter + model-checking tests.

   The headline cases machine-check the paper's Section 5 claims on
   small bounds, and document the combined-reset corner case our
   explorer uncovered (see DESIGN.md §5 and EXPERIMENTS.md E11). *)

open Resets_apn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Value / State *)

let test_value_accessors () =
  check_int "int" 5 (Value.int (Value.Int 5));
  check_bool "bool" true (Value.bool (Value.Bool true));
  Alcotest.check_raises "type error" (Value.Type_error "expected int") (fun () ->
      ignore (Value.int (Value.Bool true)))

let test_value_canonical_copies_arrays () =
  let a = [| true; false |] in
  let v = Value.canonical (Value.Bool_array a) in
  a.(0) <- false;
  check_bool "copy isolated" true (Value.bool_array v).(0)

let test_state_get_set () =
  let st = State.create [ ("x", Value.Int 1); ("b", Value.Bool false) ] in
  check_int "get" 1 (State.get_int st "x");
  State.set_int st "x" 9;
  check_int "set" 9 (State.get_int st "x");
  Alcotest.check_raises "undeclared" Not_found (fun () -> State.set_int st "nope" 1)

let test_state_snapshot_restore () =
  let st = State.create [ ("x", Value.Int 1); ("a", Value.Bool_array [| false |]) ] in
  let snap = State.snapshot st in
  State.set_int st "x" 99;
  (State.get_bool_array st "a").(0) <- true;
  State.restore st snap;
  check_int "x restored" 1 (State.get_int st "x");
  check_bool "array restored" false (State.get_bool_array st "a").(0)

let test_state_snapshot_sorted_and_deep () =
  let st = State.create [ ("z", Value.Int 1); ("a", Value.Int 2) ] in
  let names = List.map fst (State.snapshot st) in
  Alcotest.(check (list string)) "sorted" [ "a"; "z" ] names

let test_state_duplicate_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "State.create: duplicate variable x")
    (fun () -> ignore (State.create [ ("x", Value.Int 1); ("x", Value.Int 2) ]))

(* ------------------------------------------------------------------ *)
(* Network *)

let test_network_fifo () =
  let n = Network.create () in
  Network.send n ~src:"p" ~dst:"q" (Message.msg 1);
  Network.send n ~src:"p" ~dst:"q" (Message.msg 2);
  check_int "queue length" 2 (Network.queue_length n ~src:"p" ~dst:"q");
  Alcotest.(check (option int)) "fifo head"
    (Some 1)
    (Option.map (fun m -> List.hd m.Message.args) (Network.receive n ~src:"p" ~dst:"q"));
  Alcotest.(check (option int)) "fifo second"
    (Some 2)
    (Option.map (fun m -> List.hd m.Message.args) (Network.receive n ~src:"p" ~dst:"q"));
  check_bool "empty" true (Network.receive n ~src:"p" ~dst:"q" = None)

let test_network_capacity () =
  let n = Network.create ~capacity:1 () in
  Network.send n ~src:"p" ~dst:"q" (Message.msg 1);
  check_bool "full" false (Network.can_send n ~src:"p" ~dst:"q");
  Alcotest.check_raises "overfull" (Invalid_argument "Network.send: channel full")
    (fun () -> Network.send n ~src:"p" ~dst:"q" (Message.msg 2));
  check_bool "inject full returns false" false
    (Network.inject n ~src:"p" ~dst:"q" (Message.msg 3))

let test_network_history () =
  let n = Network.create ~record_history:true () in
  Network.send n ~src:"p" ~dst:"q" (Message.msg 1);
  Network.send n ~src:"p" ~dst:"q" (Message.msg 2);
  Network.send n ~src:"p" ~dst:"q" (Message.msg 1);
  (* duplicate collapsed *)
  check_int "distinct history" 2 (List.length (Network.history n ~src:"p" ~dst:"q"));
  (* injections are not recorded *)
  ignore (Network.inject n ~src:"p" ~dst:"q" (Message.msg 9));
  check_int "inject unrecorded" 2 (List.length (Network.history n ~src:"p" ~dst:"q"))

let test_network_drop_head () =
  let n = Network.create () in
  Network.send n ~src:"p" ~dst:"q" (Message.msg 1);
  ignore (Network.drop_head n ~src:"p" ~dst:"q");
  check_int "dropped" 0 (Network.queue_length n ~src:"p" ~dst:"q")

(* ------------------------------------------------------------------ *)
(* System execution *)

let tiny_bounds = Models.{ s_max = 3; p_resets = 0; q_resets = 0 }

let test_system_in_order_delivery () =
  (* No faults: running the original protocol delivers 1..s_max exactly
     once (w-Delivery + Discrimination on a perfect channel). *)
  let sys = Models.original_system ~bounds:tiny_bounds ~w:2 () in
  let prng = Resets_util.Prng.create 5 in
  ignore (System.run_random prng ~steps:1000 sys);
  let q = System.state_of sys "q" in
  check_bool "no dup" true (Models.discrimination_holds sys);
  check_int "all delivered" 3
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
       (State.get_bool_array q "dlv"))

let test_system_enabled_steps_deterministic_order () =
  let sys = Models.original_system ~bounds:tiny_bounds ~w:2 () in
  let a = List.map System.step_label (System.enabled_steps sys) in
  let b = List.map System.step_label (System.enabled_steps sys) in
  Alcotest.(check (list string)) "stable" a b

let test_system_execute_disabled_rejected () =
  let sys = Models.original_system ~bounds:tiny_bounds ~w:2 () in
  (* q.rcv is disabled while the channel is empty: index 0 is receive *)
  let disabled =
    System.Proc_action { proc = "q"; index = 0; label = "rcv" }
  in
  Alcotest.check_raises "disabled"
    (Invalid_argument "System.execute: disabled step q.rcv") (fun () ->
      System.execute sys disabled)

let test_system_snapshot_restore_roundtrip () =
  let sys = Models.original_system ~bounds:tiny_bounds ~w:2 () in
  let snap0 = System.snapshot sys in
  let prng = Resets_util.Prng.create 1 in
  ignore (System.run_random prng ~steps:50 sys);
  let snap1 = System.snapshot sys in
  check_bool "progressed" false (System.snapshot_equal snap0 snap1);
  System.restore sys snap0;
  check_bool "restored" true (System.snapshot_equal snap0 (System.snapshot sys))

let test_system_random_run_deterministic () =
  let run seed =
    let sys = Models.original_system ~bounds:tiny_bounds ~w:2 () in
    let prng = Resets_util.Prng.create seed in
    ignore (System.run_random prng ~steps:200 sys);
    System.snapshot sys
  in
  check_bool "same seed same state" true (System.snapshot_equal (run 3) (run 3))

(* ------------------------------------------------------------------ *)
(* Explorer: Section 5 machine-checked on small bounds *)

let explore ?(max_states = 400_000) sys invariant =
  Explorer.explore ~max_states ~invariant sys

let is_violation = function
  | Explorer.Violation _ -> true
  | Explorer.Exhausted _ | Explorer.Limit_reached _ -> false

let is_exhausted_ok = function
  | Explorer.Exhausted _ -> true
  | Explorer.Violation _ | Explorer.Limit_reached _ -> false

let test_original_protocol_safe_without_resets () =
  (* With no resets, even the replay adversary cannot force a duplicate
     delivery: the window protocol's own guarantee. *)
  let bounds = Models.{ s_max = 3; p_resets = 0; q_resets = 0 } in
  let sys = Models.original_system ~bounds ~capacity:2 ~adversary:true ~w:2 () in
  check_bool "exhausted, invariant holds" true
    (is_exhausted_ok (explore sys Models.discrimination_holds))

let test_original_protocol_broken_by_receiver_reset () =
  (* Section 3, paragraph 1: reset q, replay, duplicate delivery. *)
  let bounds = Models.{ s_max = 4; p_resets = 0; q_resets = 1 } in
  let sys = Models.original_system ~bounds ~capacity:2 ~adversary:true ~w:2 () in
  match explore sys Models.discrimination_holds with
  | Explorer.Violation { trace; _ } ->
    check_bool "trace mentions a reset" true
      (List.exists (fun l -> l = "q.reset") trace);
    check_bool "trace mentions a replay" true
      (List.exists (fun l -> String.length l >= 6 && String.sub l 0 6 = "replay") trace)
  | Explorer.Exhausted _ | Explorer.Limit_reached _ ->
    Alcotest.fail "expected a Discrimination violation"

let test_augmented_sender_resets_safe () =
  (* Theorem (i): sender resets never violate Section 5 invariants,
     even with the adversary replaying. *)
  let bounds = Models.{ s_max = 3; p_resets = 1; q_resets = 0 } in
  let sys =
    Models.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:1 ~kq:1 ~w:2 ()
  in
  check_bool "exhausted, invariants hold" true
    (is_exhausted_ok (explore sys Models.all_section5_invariants))

let test_augmented_receiver_resets_safe_without_jumps () =
  (* Theorem (ii) under the paper's implicit dense-arrival assumption:
     no adversary, ample channel capacity, receiver resets only. *)
  let bounds = Models.{ s_max = 4; p_resets = 0; q_resets = 2 } in
  let sys = Models.augmented_system ~bounds ~capacity:6 ~kp:1 ~kq:1 ~w:2 () in
  check_bool "exhausted, invariants hold" true
    (is_exhausted_ok (explore sys Models.all_section5_invariants))

let test_combined_resets_find_the_corner_case () =
  (* The case the paper calls "straightforward to verify": with both
     hosts resetting and the adversary active, the receiver's right
     edge can jump more than Kq in one receive; a reset during the
     in-flight SAVE then recovers a stale edge. Our explorer finds it. *)
  let bounds = Models.{ s_max = 3; p_resets = 1; q_resets = 1 } in
  let sys =
    Models.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:1 ~kq:1 ~w:2 ()
  in
  check_bool "violation found" true
    (is_violation (explore sys Models.all_section5_invariants))

let test_robust_receiver_closes_the_corner_case () =
  let bounds = Models.{ s_max = 3; p_resets = 1; q_resets = 1 } in
  let sys =
    Models.augmented_system ~bounds ~capacity:2 ~adversary:true ~robust:true ~kp:1
      ~kq:1 ~w:2 ()
  in
  check_bool "exhausted, invariants hold" true
    (is_exhausted_ok (explore sys Models.all_section5_invariants))

let test_leap_two_k_is_tight () =
  (* Section 5's choice of 2K, machine-checked to be necessary and
     sufficient: leap = K (or 0) is refuted, leap = 2K is exhaustively
     verified, with Kp = 2 so a reset can land mid-interval. *)
  let bounds = Models.{ s_max = 5; p_resets = 1; q_resets = 0 } in
  let explore_leap leap =
    explore ~max_states:500_000
      (Models.augmented_system ~bounds ~capacity:2 ?leap_p:leap ~kp:2 ~kq:2 ~w:2 ())
      Models.sender_freshness_holds
  in
  check_bool "2K verified" true (is_exhausted_ok (explore_leap None));
  check_bool "K refuted" true (is_violation (explore_leap (Some 2)));
  check_bool "0 refuted" true (is_violation (explore_leap (Some 0)))

let test_explorer_limit_reached () =
  let bounds = Models.{ s_max = 6; p_resets = 1; q_resets = 1 } in
  let sys = Models.augmented_system ~bounds ~capacity:3 ~kp:2 ~kq:2 ~w:3 () in
  match Explorer.explore ~max_states:50 ~invariant:(fun _ -> true) sys with
  | Explorer.Limit_reached { states } -> check_int "stopped at budget" 50 states
  | Explorer.Exhausted _ | Explorer.Violation _ -> Alcotest.fail "expected limit"

let test_explorer_restores_initial_state () =
  let bounds = Models.{ s_max = 3; p_resets = 0; q_resets = 0 } in
  let sys = Models.original_system ~bounds ~w:2 () in
  let before = System.snapshot sys in
  ignore (explore sys Models.discrimination_holds);
  check_bool "restored" true (System.snapshot_equal before (System.snapshot sys))

let test_replay_reproduces_counterexample () =
  (* a counterexample trace replays to a state violating the invariant *)
  let bounds = Models.{ s_max = 4; p_resets = 0; q_resets = 1 } in
  let sys = Models.original_system ~bounds ~capacity:2 ~adversary:true ~w:2 () in
  (match explore sys Models.discrimination_holds with
  | Explorer.Violation { trace; _ } -> begin
    match Explorer.replay sys trace with
    | Ok () ->
      check_bool "end state violates" false (Models.discrimination_holds sys)
    | Error m -> Alcotest.failf "replay failed: %s" m
  end
  | Explorer.Exhausted _ | Explorer.Limit_reached _ -> Alcotest.fail "expected violation")

let test_replay_rejects_bogus_trace () =
  let sys = Models.original_system ~bounds:tiny_bounds ~w:2 () in
  check_bool "bogus label" true
    (Result.is_error (Explorer.replay sys [ "p.send"; "q.frobnicate" ]))

let test_explorer_immediate_violation () =
  let sys = Models.original_system ~bounds:tiny_bounds ~w:2 () in
  match Explorer.explore ~max_states:10 ~invariant:(fun _ -> false) sys with
  | Explorer.Violation { trace; _ } -> check_int "empty trace" 0 (List.length trace)
  | Explorer.Exhausted _ | Explorer.Limit_reached _ -> Alcotest.fail "expected violation"

(* ------------------------------------------------------------------ *)
(* Randomized soundness: long random executions of the robust system
   keep all invariants, whatever the interleaving. *)

let random_soundness =
  QCheck.Test.make ~name:"robust augmented system holds under random schedules"
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let bounds = Models.{ s_max = 8; p_resets = 2; q_resets = 2 } in
      let sys =
        Models.augmented_system ~bounds ~capacity:4 ~adversary:true ~lossy:true
          ~robust:true ~kp:2 ~kq:2 ~w:3 ()
      in
      let prng = Resets_util.Prng.create seed in
      ignore
        (System.run_random prng ~steps:400
           ~stop_when:(fun s -> not (Models.all_section5_invariants s))
           sys);
      Models.all_section5_invariants sys)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "apn"
    [
      ( "value/state",
        [
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          Alcotest.test_case "canonical copies" `Quick test_value_canonical_copies_arrays;
          Alcotest.test_case "get/set" `Quick test_state_get_set;
          Alcotest.test_case "snapshot/restore" `Quick test_state_snapshot_restore;
          Alcotest.test_case "snapshot sorted" `Quick test_state_snapshot_sorted_and_deep;
          Alcotest.test_case "duplicate var" `Quick test_state_duplicate_rejected;
        ] );
      ( "network",
        [
          Alcotest.test_case "fifo" `Quick test_network_fifo;
          Alcotest.test_case "capacity" `Quick test_network_capacity;
          Alcotest.test_case "history" `Quick test_network_history;
          Alcotest.test_case "drop head" `Quick test_network_drop_head;
        ] );
      ( "system",
        [
          Alcotest.test_case "in-order delivery" `Quick test_system_in_order_delivery;
          Alcotest.test_case "stable step order" `Quick
            test_system_enabled_steps_deterministic_order;
          Alcotest.test_case "disabled rejected" `Quick test_system_execute_disabled_rejected;
          Alcotest.test_case "snapshot/restore" `Quick test_system_snapshot_restore_roundtrip;
          Alcotest.test_case "deterministic runs" `Quick test_system_random_run_deterministic;
        ] );
      ( "model-check (Section 5)",
        [
          Alcotest.test_case "original safe without resets" `Slow
            test_original_protocol_safe_without_resets;
          Alcotest.test_case "original broken by q reset" `Quick
            test_original_protocol_broken_by_receiver_reset;
          Alcotest.test_case "augmented: p resets safe" `Slow
            test_augmented_sender_resets_safe;
          Alcotest.test_case "augmented: q resets safe (dense)" `Quick
            test_augmented_receiver_resets_safe_without_jumps;
          Alcotest.test_case "combined resets: corner case found" `Quick
            test_combined_resets_find_the_corner_case;
          Alcotest.test_case "robust receiver closes it" `Slow
            test_robust_receiver_closes_the_corner_case;
          Alcotest.test_case "leap 2K is tight" `Quick test_leap_two_k_is_tight;
          Alcotest.test_case "limit reached" `Quick test_explorer_limit_reached;
          Alcotest.test_case "explorer restores state" `Quick
            test_explorer_restores_initial_state;
          Alcotest.test_case "immediate violation" `Quick test_explorer_immediate_violation;
          Alcotest.test_case "replay counterexample" `Quick
            test_replay_reproduces_counterexample;
          Alcotest.test_case "replay bogus trace" `Quick test_replay_rejects_bogus_trace;
        ] );
      ("random", [ qt random_soundness ]);
    ]
