(* Crypto substrate tests: official test vectors (FIPS 180-4, RFC
   4231, RFC 8439, RFC 5869) plus structural properties. *)

open Resets_util
open Resets_crypto

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let hex = Hex.decode

(* ------------------------------------------------------------------ *)
(* SHA-256: FIPS 180-4 / NIST CAVS vectors *)

let sha_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ("a", "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb");
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, expect) -> check_str ("sha256 " ^ msg) expect (Sha256.hex_digest msg))
    sha_vectors

let test_sha256_long_input () =
  (* 100,000 'a's — exercises many blocks (vector derived from the
     standard million-'a' family, computed independently). *)
  let s = String.make 100_000 'a' in
  check_str "100k a's"
    (Sha256.hex_digest s)
    (Sha256.hex_digest (String.concat "" [ String.make 50_000 'a'; String.make 50_000 'a' ]))

let test_sha256_incremental_equals_oneshot () =
  let msg = "The quick brown fox jumps over the lazy dog" in
  (* Feed in awkward chunk sizes, including ones straddling the 64-byte
     block boundary. *)
  List.iter
    (fun chunk ->
      let ctx = Sha256.init () in
      let rec feed i =
        if i < String.length msg then begin
          let len = min chunk (String.length msg - i) in
          Sha256.feed ctx (String.sub msg i len);
          feed (i + len)
        end
      in
      feed 0;
      check_str
        (Printf.sprintf "chunk %d" chunk)
        (Sha256.digest msg)
        (Sha256.finalize ctx))
    [ 1; 3; 7; 63; 64; 65 ]

let test_sha256_boundary_lengths () =
  (* Padding edge cases: lengths around the 55/56/64 byte boundaries
     must all hash without error and differ from each other. *)
  let digests =
    List.map (fun n -> Sha256.digest (String.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65 ]
  in
  let distinct = List.sort_uniq compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length distinct)

let test_sha256_finalize_once () =
  let ctx = Sha256.init () in
  Sha256.feed ctx "x";
  ignore (Sha256.finalize ctx);
  Alcotest.check_raises "reuse rejected"
    (Invalid_argument "Sha256.finalize: context already finalized") (fun () ->
      ignore (Sha256.finalize ctx))

let incremental_property =
  QCheck.Test.make ~name:"incremental sha256 = one-shot for any split" ~count:100
    QCheck.(pair string small_nat)
    (fun (s, k) ->
      let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.feed ctx (String.sub s 0 k);
      Sha256.feed ctx (String.sub s k (String.length s - k));
      Sha256.finalize ctx = Sha256.digest s)

(* ------------------------------------------------------------------ *)
(* HMAC-SHA-256: RFC 4231 *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  check_str "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hex.encode (Hmac.mac ~key "Hi There"))

let test_hmac_rfc4231_case2 () =
  check_str "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hex.encode (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let msg = String.make 50 '\xdd' in
  check_str "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hex.encode (Hmac.mac ~key msg))

let test_hmac_rfc4231_case6_long_key () =
  (* 131-byte key: exercises the hash-the-key path. *)
  let key = String.make 131 '\xaa' in
  check_str "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hex.encode (Hmac.mac ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_truncation () =
  let tag = Hmac.mac ~key:"k" "m" in
  check_str "truncated prefix" (String.sub tag 0 16)
    (Hmac.mac_truncated ~key:"k" ~bytes:16 "m");
  Alcotest.check_raises "bad length"
    (Invalid_argument "Hmac.mac_truncated: tag length out of range") (fun () ->
      ignore (Hmac.mac_truncated ~key:"k" ~bytes:0 "m"))

let test_hmac_verify () =
  let tag = Hmac.mac_truncated ~key:"secret" ~bytes:16 "payload" in
  check_bool "accepts valid" true (Hmac.verify ~key:"secret" ~tag "payload");
  check_bool "rejects wrong msg" false (Hmac.verify ~key:"secret" ~tag "payloaX");
  check_bool "rejects wrong key" false (Hmac.verify ~key:"other" ~tag "payload");
  check_bool "rejects empty tag" false (Hmac.verify ~key:"secret" ~tag:"" "payload")

(* ------------------------------------------------------------------ *)
(* ChaCha20: RFC 8439 *)

let rfc8439_key =
  hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"

let test_chacha20_block_vector () =
  (* RFC 8439 section 2.3.2 *)
  let nonce = hex "000000090000004a00000000" in
  let block = Chacha20.block ~key:rfc8439_key ~nonce ~counter:1l in
  check_str "first block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
     d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (Hex.encode block)

let test_chacha20_encrypt_vector () =
  (* RFC 8439 section 2.4.2 *)
  let nonce = hex "000000000000004a00000000" in
  let plain =
    "Ladies and Gentlemen of the class of '99: If I could offer you \
     only one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.crypt ~key:rfc8439_key ~nonce ~counter:1l plain in
  check_str "ciphertext"
    "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
     f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
     07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
     5af90bbf74a35be6b40b8eedf2785e42874d"
    (Hex.encode ct)

let test_chacha20_involution () =
  let nonce = hex "000000000000004a00000000" in
  let msg = "round trip" in
  let ct = Chacha20.crypt ~key:rfc8439_key ~nonce msg in
  check_str "decrypt(encrypt(m)) = m" msg (Chacha20.crypt ~key:rfc8439_key ~nonce ct)

let test_chacha20_validates_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Chacha20: key must be 32 bytes")
    (fun () -> ignore (Chacha20.block ~key:"short" ~nonce:(String.make 12 '\x00') ~counter:0l));
  Alcotest.check_raises "short nonce"
    (Invalid_argument "Chacha20: nonce must be 12 bytes") (fun () ->
      ignore (Chacha20.block ~key:(String.make 32 '\x00') ~nonce:"short" ~counter:0l))

let test_chacha20_nonce_sensitivity () =
  let n1 = hex "000000000000000000000001" and n2 = hex "000000000000000000000002" in
  let msg = String.make 32 'm' in
  check_bool "different nonces differ" true
    (Chacha20.crypt ~key:rfc8439_key ~nonce:n1 msg
    <> Chacha20.crypt ~key:rfc8439_key ~nonce:n2 msg)

let chacha_roundtrip_property =
  QCheck.Test.make ~name:"chacha20 involution on any input" ~count:100 QCheck.string
    (fun s ->
      let nonce = String.make 12 '\x07' in
      Chacha20.crypt ~key:rfc8439_key ~nonce (Chacha20.crypt ~key:rfc8439_key ~nonce s)
      = s)

(* ------------------------------------------------------------------ *)
(* HKDF: RFC 5869 *)

let test_hkdf_rfc5869_case1 () =
  let ikm = hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
  let salt = hex "000102030405060708090a0b0c" in
  let info = hex "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Kdf.extract ~salt ~ikm in
  check_str "prk"
    "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
    (Hex.encode prk);
  check_str "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Hex.encode (Kdf.expand ~prk ~info ~length:42))

let test_hkdf_lengths () =
  let prk = Kdf.extract ~salt:"s" ~ikm:"k" in
  Alcotest.(check int) "1 byte" 1 (String.length (Kdf.expand ~prk ~info:"" ~length:1));
  Alcotest.(check int) "100 bytes" 100
    (String.length (Kdf.expand ~prk ~info:"" ~length:100));
  Alcotest.check_raises "zero" (Invalid_argument "Kdf.expand: length out of range")
    (fun () -> ignore (Kdf.expand ~prk ~info:"" ~length:0))

let test_hkdf_deterministic_and_info_sensitive () =
  let d1 = Kdf.derive ~salt:"s" ~ikm:"k" ~info:"a" ~length:32 in
  let d2 = Kdf.derive ~salt:"s" ~ikm:"k" ~info:"a" ~length:32 in
  let d3 = Kdf.derive ~salt:"s" ~ikm:"k" ~info:"b" ~length:32 in
  check_bool "deterministic" true (d1 = d2);
  check_bool "info-sensitive" true (d1 <> d3)

let test_stretch () =
  check_str "0 iterations is identity" "x" (Kdf.stretch ~iterations:0 "x");
  check_str "1 iteration is sha256" (Sha256.digest "x") (Kdf.stretch ~iterations:1 "x");
  check_str "composition"
    (Sha256.digest (Sha256.digest "x"))
    (Kdf.stretch ~iterations:2 "x")

(* ------------------------------------------------------------------ *)
(* Constant-time compare *)

let test_ct_equal () =
  check_bool "equal" true (Ct.equal "abc" "abc");
  check_bool "unequal" false (Ct.equal "abc" "abd");
  check_bool "lengths" false (Ct.equal "abc" "ab");
  check_bool "empty" true (Ct.equal "" "")

let ct_matches_structural =
  QCheck.Test.make ~name:"Ct.equal = String.equal" ~count:300
    QCheck.(pair string string)
    (fun (a, b) -> Ct.equal a b = String.equal a b)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "long input" `Quick test_sha256_long_input;
          Alcotest.test_case "incremental" `Quick test_sha256_incremental_equals_oneshot;
          Alcotest.test_case "padding boundaries" `Quick test_sha256_boundary_lengths;
          Alcotest.test_case "finalize once" `Quick test_sha256_finalize_once;
          qt incremental_property;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "RFC4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "RFC4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "RFC4231 case 6" `Quick test_hmac_rfc4231_case6_long_key;
          Alcotest.test_case "truncation" `Quick test_hmac_truncation;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "chacha20",
        [
          Alcotest.test_case "RFC8439 block" `Quick test_chacha20_block_vector;
          Alcotest.test_case "RFC8439 encrypt" `Quick test_chacha20_encrypt_vector;
          Alcotest.test_case "involution" `Quick test_chacha20_involution;
          Alcotest.test_case "size validation" `Quick test_chacha20_validates_sizes;
          Alcotest.test_case "nonce sensitivity" `Quick test_chacha20_nonce_sensitivity;
          qt chacha_roundtrip_property;
        ] );
      ( "kdf",
        [
          Alcotest.test_case "RFC5869 case 1" `Quick test_hkdf_rfc5869_case1;
          Alcotest.test_case "lengths" `Quick test_hkdf_lengths;
          Alcotest.test_case "determinism" `Quick test_hkdf_deterministic_and_info_sensitive;
          Alcotest.test_case "stretch" `Quick test_stretch;
        ] );
      ( "ct",
        [ Alcotest.test_case "equal" `Quick test_ct_equal; qt ct_matches_structural ] );
    ]
