(* SA lifetime rollover: make-before-break vs hard expiry, and the
   retirement of per-epoch persisted state. *)

open Resets_sim
open Resets_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Rekey.default_config

let test_mbb_no_service_gap () =
  let o = Rekey.run Rekey.Make_before_break cfg in
  check_bool "several rollovers" true (o.Rekey.rekeys_completed >= 3);
  check_int "no duplicates" 0 o.Rekey.duplicate_deliveries;
  check_bool "nothing lost beyond in-flight tail" true (o.Rekey.messages_lost <= 2);
  (* the worst delivery gap stays at message-spacing scale, far below
     the 2.8 ms handshake *)
  check_bool "no handshake-sized gap" true
    Time.(o.Rekey.max_delivery_gap < Time.of_us 500)

let test_hard_expiry_pays_the_handshake () =
  let o = Rekey.run Rekey.Hard_expiry cfg in
  check_bool "rollovers happened" true (o.Rekey.rekeys_completed >= 3);
  check_int "still safe" 0 o.Rekey.duplicate_deliveries;
  check_bool "service gap ~ handshake" true
    Time.(Time.of_ms 2 < o.Rekey.max_delivery_gap);
  let mbb = Rekey.run Rekey.Make_before_break cfg in
  check_bool "fewer deliveries than MBB" true (o.Rekey.delivered < mbb.Rekey.delivered)

let test_old_epoch_state_retired () =
  let o = Rekey.run Rekey.Make_before_break cfg in
  (* only the live epoch's counter remains on disk *)
  check_int "one persisted counter" 1 o.Rekey.persisted_keys_live

let test_margin_validation () =
  Alcotest.check_raises "margin >= lifetime"
    (Invalid_argument "Rekey.run: margin must be below the lifetime") (fun () ->
      ignore
        (Rekey.run Rekey.Make_before_break
           { cfg with Rekey.rekey_margin = cfg.Rekey.lifetime_packets }))

let test_deterministic () =
  let a = Rekey.run Rekey.Make_before_break cfg in
  let b = Rekey.run Rekey.Make_before_break cfg in
  check_int "same deliveries" a.Rekey.delivered b.Rekey.delivered;
  check_int "same rekeys" a.Rekey.rekeys_completed b.Rekey.rekeys_completed

let test_tight_margin_still_safe () =
  (* a margin smaller than the handshake forces an outage even under
     MBB, but never a safety violation *)
  let tight = { cfg with Rekey.rekey_margin = 50 } in
  let o = Rekey.run Rekey.Make_before_break tight in
  check_int "no duplicates" 0 o.Rekey.duplicate_deliveries;
  check_bool "gap appears" true Time.(Time.of_ms 1 < o.Rekey.max_delivery_gap)

let () =
  Alcotest.run "rekey"
    [
      ( "rollover",
        [
          Alcotest.test_case "MBB: no service gap" `Quick test_mbb_no_service_gap;
          Alcotest.test_case "hard expiry pays handshake" `Quick
            test_hard_expiry_pays_the_handshake;
          Alcotest.test_case "old state retired" `Quick test_old_epoch_state_retired;
          Alcotest.test_case "margin validation" `Quick test_margin_validation;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "tight margin still safe" `Quick
            test_tight_margin_still_safe;
        ] );
    ]
