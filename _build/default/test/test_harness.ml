(* Integration tests through the full harness: each of the paper's
   claims exercised end-to-end (crypto, link, adversary, disks). *)

open Resets_sim
open Resets_core
open Resets_workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ms = Time.of_ms

(* Gap 8 us with the paper's 100 us SAVE latency gives k_min = 13; 25
   respects Section 4's rule with margin. *)
let base =
  {
    Harness.default with
    horizon = ms 20;
    message_gap = Time.of_us 8;
    protocol = Protocol.save_fetch ~kp:25 ~kq:25 ();
  }

(* ------------------------------------------------------------------ *)
(* Clean runs *)

let test_clean_run_delivers_everything () =
  let r = Harness.run base in
  let m = r.Harness.metrics in
  check_bool "sent many" true (m.Metrics.sent > 2000);
  (* allow the few packets still in flight at the horizon *)
  check_bool "delivered ~sent" true (m.Metrics.sent - m.Metrics.delivered <= 3);
  check_int "no duplicates" 0 m.Metrics.duplicate_deliveries;
  check_int "no discards" 0 m.Metrics.fresh_rejected;
  check_bool "saves ran on both ends" true
    (r.Harness.saves_completed_p > 0 && r.Harness.saves_completed_q > 0)

let test_clean_run_verdict_holds () =
  let r = Harness.run base in
  check_bool "verdict" true (Convergence.holds (Convergence.check ~scenario:base r))

let test_determinism_same_seed () =
  let r1 = Harness.run base and r2 = Harness.run base in
  check_int "same sent" r1.Harness.metrics.Metrics.sent r2.Harness.metrics.Metrics.sent;
  check_int "same delivered" r1.Harness.metrics.Metrics.delivered
    r2.Harness.metrics.Metrics.delivered;
  check_int "same edge" r1.Harness.receiver_edge r2.Harness.receiver_edge

let test_different_seed_with_jitter_differs () =
  let jittery seed =
    {
      base with
      seed;
      traffic = Harness.Poisson;
      link_jitter = Time.of_us 4;
    }
  in
  let r1 = Harness.run (jittery 1) and r2 = Harness.run (jittery 2) in
  check_bool "different dynamics" true
    (r1.Harness.metrics.Metrics.sent <> r2.Harness.metrics.Metrics.sent
    || r1.Harness.receiver_edge <> r2.Harness.receiver_edge)

let test_window_impls_agree_end_to_end () =
  let with_impl window_impl = Harness.run { base with window_impl } in
  let a = with_impl Resets_ipsec.Replay_window.Paper_impl in
  let b = with_impl Resets_ipsec.Replay_window.Bitmap_impl in
  let c = with_impl Resets_ipsec.Replay_window.Block_impl in
  check_int "paper = bitmap deliveries" a.Harness.metrics.Metrics.delivered
    b.Harness.metrics.Metrics.delivered;
  check_int "bitmap = block deliveries" b.Harness.metrics.Metrics.delivered
    c.Harness.metrics.Metrics.delivered;
  check_int "same edge" a.Harness.receiver_edge c.Harness.receiver_edge

let test_esn_framing_agrees_with_seq64 () =
  (* The ESN wire format (32-bit low + ICV over the inferred 64-bit
     number) delivers exactly the same fresh traffic and admits zero
     replays. One observable difference is genuine RFC 4304 behaviour:
     a replayed number far below the window infers into the wrong
     epoch and dies at the ICV check instead of the window check. *)
  let scenario =
    {
      base with
      horizon = ms 30;
      resets = Reset_schedule.single ~at:(ms 10) ~downtime:(ms 1) Receiver;
      attack = Harness.Flood { start = ms 11; gap = Time.of_us 20 };
    }
  in
  let a = Harness.run scenario in
  let b = Harness.run { scenario with framing = Packet.Esn32 } in
  check_int "same deliveries" a.Harness.metrics.Metrics.delivered
    b.Harness.metrics.Metrics.delivered;
  check_int "no replays either way" 0
    (a.Harness.metrics.Metrics.replay_accepted
    + b.Harness.metrics.Metrics.replay_accepted);
  check_int "replays die at ICV or window, never delivered"
    (a.Harness.metrics.Metrics.replay_rejected + a.Harness.metrics.Metrics.bad_icv)
    (b.Harness.metrics.Metrics.replay_rejected + b.Harness.metrics.Metrics.bad_icv)

let test_displacement_metric_tracks_reorder () =
  let scenario =
    {
      base with
      faults =
        { Link.no_faults with reorder_prob = 0.2; reorder_delay = Time.of_us 80 };
    }
  in
  let r = Harness.run scenario in
  (* 80 us of extra delay at 8 us per message displaces by ~10 slots *)
  check_bool "displacement observed" true
    (r.Harness.metrics.Metrics.max_displacement >= 8
    && r.Harness.metrics.Metrics.max_displacement <= 12)

let test_lossy_link_no_false_positives () =
  let scenario =
    {
      base with
      faults = { Link.no_faults with loss_prob = 0.05; dup_prob = 0.02 };
      link_jitter = Time.of_us 2;
    }
  in
  let r = Harness.run scenario in
  let m = r.Harness.metrics in
  check_int "duplicated packets never delivered twice" 0 m.Metrics.duplicate_deliveries;
  check_bool "loss visible" true (r.Harness.link_dropped > 0);
  check_int "no replays (none injected)" 0 m.Metrics.replay_accepted

(* ------------------------------------------------------------------ *)
(* E1: sender reset *)

let test_sender_reset_loss_bounded () =
  (* Sweep the reset over every phase of the SAVE cycle; the skipped
     numbers must stay within (0, 2Kp] and no fresh message may be
     discarded (no reorder on a clean link). *)
  let kp = 25 in
  let gap_us = 8 in
  List.iter
    (fun phase_us ->
      let scenario =
        {
          base with
          protocol = Protocol.save_fetch ~kp ~kq:25 ();
          resets =
            Reset_schedule.single
              ~at:(Time.of_us (5000 + (phase_us * gap_us)))
              ~downtime:(ms 1) Sender;
        }
      in
      let r = Harness.run scenario in
      let m = r.Harness.metrics in
      check_bool
        (Printf.sprintf "phase %d: skipped in (0, 2Kp]" phase_us)
        true
        (m.Metrics.skipped_seqnos > 0 && m.Metrics.skipped_seqnos <= 2 * kp);
      check_int (Printf.sprintf "phase %d: no fresh discard" phase_us) 0
        m.Metrics.fresh_rejected;
      check_int (Printf.sprintf "phase %d: no reuse" phase_us) 0
        m.Metrics.reused_seqnos)
    [ 0; 1; 5; 12; 18; 24 ]

let test_sender_reset_volatile_discards_unboundedly () =
  (* Section 3 paragraph 2: the longer p ran before the reset, the more
     fresh messages die. *)
  let discards_after reset_ms =
    let scenario =
      {
        base with
        horizon = ms (reset_ms + 10);
        protocol = Protocol.Volatile;
        resets = Reset_schedule.single ~at:(ms reset_ms) ~downtime:(ms 1) Sender;
      }
    in
    (Harness.run scenario).Harness.metrics.Metrics.fresh_rejected
  in
  let d5 = discards_after 5 and d10 = discards_after 10 in
  check_bool "discards grow with pre-reset traffic" true (d10 > d5 && d5 > 100)

(* ------------------------------------------------------------------ *)
(* E2: receiver reset *)

let test_receiver_reset_discards_bounded () =
  let kq = 25 in
  List.iter
    (fun reset_us ->
      let scenario =
        {
          base with
          protocol = Protocol.save_fetch ~kp:25 ~kq ();
          resets =
            Reset_schedule.single ~at:(Time.of_us reset_us) ~downtime:(Time.of_us 1)
              Receiver;
        }
      in
      let r = Harness.run scenario in
      let m = r.Harness.metrics in
      check_bool
        (Printf.sprintf "reset@%dus: discards <= 2Kq" reset_us)
        true
        (m.Metrics.fresh_rejected_undelivered <= 2 * kq);
      check_int (Printf.sprintf "reset@%dus: no replay" reset_us) 0
        m.Metrics.replay_accepted)
    [ 5000; 5008; 5040; 7000 ]

let test_receiver_reset_with_replay_flood () =
  let scenario =
    {
      base with
      resets = Reset_schedule.single ~at:(ms 8) ~downtime:(ms 1) Receiver;
      attack = Harness.Flood { start = ms 9; gap = Time.of_us 8 };
    }
  in
  let r = Harness.run scenario in
  check_int "flood fully rejected" 0 r.Harness.metrics.Metrics.replay_accepted;
  check_bool "flood actually ran" true (r.Harness.adversary_injected > 100)

(* ------------------------------------------------------------------ *)
(* E3: volatile receiver + replay-all = unbounded acceptance *)

let replay_all_scenario protocol stop_ms =
  {
    base with
    horizon = ms (stop_ms + 20);
    protocol;
    sender_stop_at = Some (ms stop_ms);
    resets = Reset_schedule.single ~at:(ms (stop_ms + 1)) ~downtime:(ms 1) Receiver;
    attack = Harness.Replay_all_at (ms (stop_ms + 3));
  }

let test_volatile_replay_acceptance_grows () =
  let accepted stop_ms =
    (Harness.run (replay_all_scenario Protocol.Volatile stop_ms)).Harness.metrics
      .Metrics.replay_accepted
  in
  let a5 = accepted 5 and a10 = accepted 10 in
  check_bool "substantial acceptance" true (a5 > 400);
  check_bool "grows with history (unbounded)" true (a10 > a5 + 400)

let test_save_fetch_replay_acceptance_zero () =
  let r = Harness.run (replay_all_scenario (Protocol.save_fetch ~kp:25 ~kq:25 ()) 10) in
  check_int "zero accepted" 0 r.Harness.metrics.Metrics.replay_accepted;
  check_bool "replays did arrive" true (r.Harness.metrics.Metrics.replay_rejected > 400)

(* ------------------------------------------------------------------ *)
(* E5: both reset + wedge *)

let wedge_scenario protocol =
  {
    base with
    horizon = ms 30;
    protocol;
    resets = Reset_schedule.both ~at:(ms 10) ~downtime:(ms 1) ();
    attack = Harness.Wedge_at (ms 11);
  }

let test_wedge_disrupts_volatile () =
  let r = Harness.run (wedge_scenario Protocol.Volatile) in
  let m = r.Harness.metrics in
  check_bool "wedge accepted" true (m.Metrics.replay_accepted >= 1);
  (* the volatile sender restarted at 1 under a window wedged at ~1250:
     a large stretch of fresh traffic dies *)
  check_bool "large fresh kill" true (m.Metrics.fresh_rejected > 200)

let test_wedge_harmless_with_save_fetch () =
  let r = Harness.run (wedge_scenario (Protocol.save_fetch ~kp:25 ~kq:25 ())) in
  let m = r.Harness.metrics in
  check_int "wedge rejected" 0 m.Metrics.replay_accepted;
  check_bool "discards bounded by 2Kq" true (m.Metrics.fresh_rejected_undelivered <= 50)

(* ------------------------------------------------------------------ *)
(* E7: re-establishment baseline *)

let test_reestablish_recovers_but_slowly () =
  let scenario =
    {
      base with
      horizon = ms 60;
      protocol = Protocol.Reestablish { cost = Resets_ipsec.Ike.default_cost };
      resets = Reset_schedule.single ~at:(ms 10) ~downtime:(ms 1) Receiver;
    }
  in
  let r = Harness.run scenario in
  let m = r.Harness.metrics in
  check_int "safe (no replays)" 0 m.Metrics.replay_accepted;
  (* the handshake's 24 ms outage kills ~3000 messages at 8 us/msg *)
  check_bool "expensive outage" true (m.Metrics.dropped_host_down > 2000);
  check_bool "mean disruption >= handshake" true
    (Resets_util.Stats.Sample.mean m.Metrics.disruption_times >= 0.024)

let test_save_fetch_recovery_much_cheaper () =
  let scenario =
    {
      base with
      horizon = ms 60;
      resets = Reset_schedule.single ~at:(ms 10) ~downtime:(ms 1) Receiver;
    }
  in
  let r = Harness.run scenario in
  let m = r.Harness.metrics in
  check_bool "disruption ~downtime" true
    (Resets_util.Stats.Sample.mean m.Metrics.disruption_times < 0.003)

(* ------------------------------------------------------------------ *)
(* Ablations: unsound leaps *)

let test_leap_ablation_zero_leap_unsound () =
  (* leap = 0 reuses the in-flight gap after a mid-save crash; with the
     adversary replaying, safety can break. At minimum the sender reuses
     sequence numbers. *)
  let scenario =
    {
      base with
      horizon = ms 40;
      protocol = Protocol.save_fetch ~leap_p:0 ~leap_q:0 ~kp:25 ~kq:25 ();
      resets = Reset_schedule.single ~at:(ms 10) ~downtime:(ms 1) Sender;
    }
  in
  let r = Harness.run scenario in
  check_bool "sequence numbers reused" true
    (r.Harness.metrics.Metrics.reused_seqnos > 0)

let test_leap_ablation_full_leap_sound () =
  let scenario =
    {
      base with
      horizon = ms 40;
      resets =
        Reset_schedule.merge
          (Reset_schedule.single ~at:(ms 10) ~downtime:(ms 1) Sender)
          (Reset_schedule.single ~at:(ms 20) ~downtime:(ms 1) Receiver);
      attack = Harness.Flood { start = ms 1; gap = Time.of_us 40 };
    }
  in
  let r = Harness.run scenario in
  let v = Convergence.check ~scenario r in
  check_bool "all guarantees" true (Convergence.holds v)

(* ------------------------------------------------------------------ *)
(* E13: message-counted vs timer-based SAVE triggers *)

let test_timer_trigger_unsound_under_bursts () =
  (* Section 4's argument: during a burst a long timer lets the durable
     value fall more than 2K behind, so a reset resumes on used
     numbers. *)
  let run save_timer_p =
    Harness.run
      {
        base with
        horizon = ms 100;
        message_gap = Time.of_us 4;
        protocol = Protocol.save_fetch ?save_timer_p ~kp:25 ~kq:25 ();
        traffic = Harness.Bursty { burst_length = 1000; off_duration = ms 20 };
        resets = Reset_schedule.single ~at:(ms 50) ~downtime:(ms 1) Sender;
      }
  in
  let count_mode = run None in
  check_int "count rule sound" 0 count_mode.Harness.metrics.Metrics.reused_seqnos;
  let slow_timer = run (Some (ms 1)) in
  check_bool "1ms timer reuses numbers" true
    (slow_timer.Harness.metrics.Metrics.reused_seqnos > 0)

let test_timer_trigger_wasteful_when_slow () =
  (* ... and on slow traffic a safe (short) timer writes per message
     where the count rule amortizes. *)
  let run save_timer_p =
    let r =
      Harness.run
        {
          base with
          horizon = ms 200;
          message_gap = ms 2;
          protocol = Protocol.save_fetch ?save_timer_p ~kp:25 ~kq:25 ();
        }
    in
    r.Harness.saves_completed_p + r.Harness.saves_lost_p
  in
  let count_writes = run None and timer_writes = run (Some (Time.of_us 100)) in
  check_bool "timer writes per message" true (timer_writes > 15 * count_writes)

(* ------------------------------------------------------------------ *)
(* Convergence verdict plumbing *)

let test_verdict_flags_volatile_failures () =
  let scenario = replay_all_scenario Protocol.Volatile 5 in
  let r = Harness.run scenario in
  let v = Convergence.check ~scenario r in
  check_bool "replay flagged" false v.Convergence.no_replay_accepted;
  check_bool "overall fails" false (Convergence.holds v)

let () =
  Alcotest.run "harness"
    [
      ( "clean",
        [
          Alcotest.test_case "delivers everything" `Quick test_clean_run_delivers_everything;
          Alcotest.test_case "verdict holds" `Quick test_clean_run_verdict_holds;
          Alcotest.test_case "deterministic" `Quick test_determinism_same_seed;
          Alcotest.test_case "seed sensitivity" `Quick test_different_seed_with_jitter_differs;
          Alcotest.test_case "window impls agree" `Quick test_window_impls_agree_end_to_end;
          Alcotest.test_case "esn framing agrees" `Quick test_esn_framing_agrees_with_seq64;
          Alcotest.test_case "displacement metric" `Quick
            test_displacement_metric_tracks_reorder;
          Alcotest.test_case "lossy link" `Quick test_lossy_link_no_false_positives;
        ] );
      ( "E1 sender reset",
        [
          Alcotest.test_case "loss bounded by 2Kp (phase sweep)" `Quick
            test_sender_reset_loss_bounded;
          Alcotest.test_case "volatile discards grow" `Quick
            test_sender_reset_volatile_discards_unboundedly;
        ] );
      ( "E2 receiver reset",
        [
          Alcotest.test_case "discards bounded by 2Kq" `Quick
            test_receiver_reset_discards_bounded;
          Alcotest.test_case "replay flood rejected" `Quick
            test_receiver_reset_with_replay_flood;
        ] );
      ( "E3 replay-all",
        [
          Alcotest.test_case "volatile acceptance grows" `Quick
            test_volatile_replay_acceptance_grows;
          Alcotest.test_case "save/fetch zero" `Quick test_save_fetch_replay_acceptance_zero;
        ] );
      ( "E5 wedge",
        [
          Alcotest.test_case "disrupts volatile" `Quick test_wedge_disrupts_volatile;
          Alcotest.test_case "harmless with save/fetch" `Quick
            test_wedge_harmless_with_save_fetch;
        ] );
      ( "E7 re-establishment",
        [
          Alcotest.test_case "safe but slow" `Quick test_reestablish_recovers_but_slowly;
          Alcotest.test_case "save/fetch cheaper" `Quick test_save_fetch_recovery_much_cheaper;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "leap 0 unsound" `Quick test_leap_ablation_zero_leap_unsound;
          Alcotest.test_case "leap 2K sound under storm" `Quick
            test_leap_ablation_full_leap_sound;
        ] );
      ( "E13 save trigger",
        [
          Alcotest.test_case "timer unsound under bursts" `Quick
            test_timer_trigger_unsound_under_bursts;
          Alcotest.test_case "timer wasteful when slow" `Quick
            test_timer_trigger_wasteful_when_slow;
        ] );
      ( "verdict",
        [ Alcotest.test_case "flags failures" `Quick test_verdict_flags_volatile_failures ] );
    ]
