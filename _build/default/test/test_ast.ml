(* The APN abstract syntax: interpreter semantics, the renderer, and
   the equivalence of the declarative models with the hand-coded
   closure models. *)

open Resets_apn
open Ast

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let no_send : Process.context =
  { Process.self = "test"; send = (fun ~dst:_ _ -> Alcotest.fail "unexpected send") }

let state bindings = State.create bindings

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let test_eval_arithmetic () =
  let st = state [ ("x", Value.Int 10) ] in
  check_int "arith" 9
    (Interp.eval_int ~consts:[] st ((var "x" +: int 5) -: Mul (int 2, int 3)))

let test_eval_comparisons () =
  let st = state [ ("x", Value.Int 10) ] in
  let t e = Interp.eval_bool ~consts:[] st e in
  check_bool "le" true (t (var "x" <=: int 10));
  check_bool "lt" false (t (var "x" <: int 10));
  check_bool "ge" true (t (var "x" >=: int 10));
  check_bool "gt" false (t (var "x" >: int 10));
  check_bool "eq" true (t (var "x" =: int 10));
  check_bool "and" false (t ((var "x" >: int 5) &&: (var "x" >: int 20)));
  check_bool "or" true (t (Or (var "x" >: int 5, var "x" >: int 20)));
  check_bool "not" true (t (not_ (var "x" >: int 20)))

let test_eval_consts_shadow_nothing () =
  let st = state [ ("x", Value.Int 1) ] in
  check_int "const read" 42 (Interp.eval_int ~consts:[ ("k", 42) ] st (var "k"));
  check_int "var read" 1 (Interp.eval_int ~consts:[ ("k", 42) ] st (var "x"))

let test_eval_array_indexing_is_one_based () =
  let st = state [ ("a", Value.Bool_array [| true; false |]) ] in
  check_bool "a[1]" true (Interp.eval_bool ~consts:[] st (Index ("a", int 1)));
  check_bool "a[2]" false (Interp.eval_bool ~consts:[] st (Index ("a", int 2)));
  check_bool "a[0] raises" true
    (match Interp.eval ~consts:[] st (Index ("a", int 0)) with
    | exception Interp.Eval_error _ -> true
    | _ -> false)

let test_eval_type_errors () =
  let st = state [ ("b", Value.Bool true) ] in
  check_bool "int of bool raises" true
    (match Interp.eval_int ~consts:[] st (var "b") with
    | exception Interp.Eval_error _ -> true
    | _ -> false);
  check_bool "unknown name raises" true
    (match Interp.eval ~consts:[] st (var "nope") with
    | exception Interp.Eval_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Statement execution *)

let exec ?(consts = []) st stmt = Interp.exec ~consts ~ctx:no_send st stmt

let test_simultaneous_assignment () =
  (* the paper's idiom: wdw[j], j := false, j + 1 — the index uses the
     old j *)
  let st = state [ ("a", Value.Bool_array [| true; true |]); ("j", Value.Int 1) ] in
  exec st (assign_many [ (Lindex ("a", var "j"), Bool_lit false); (Lvar "j", var "j" +: int 1) ]);
  check_bool "a[1] cleared" false (State.get_bool_array st "a").(0);
  check_bool "a[2] untouched" true (State.get_bool_array st "a").(1);
  check_int "j bumped" 2 (State.get_int st "j")

let test_simultaneous_swap () =
  let st = state [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  exec st (assign_many [ (Lvar "x", var "y"); (Lvar "y", var "x") ]);
  check_int "x" 2 (State.get_int st "x");
  check_int "y" 1 (State.get_int st "y")

let test_if_selects_true_branch () =
  let st = state [ ("x", Value.Int 5) ] in
  exec st
    (If
       [
         (var "x" >: int 10, assign "x" (int 0));
         (var "x" <=: int 10, assign "x" (int 99));
       ]);
  check_int "second branch" 99 (State.get_int st "x")

let test_if_no_true_guard_is_error () =
  let st = state [ ("x", Value.Int 5) ] in
  check_bool "raises" true
    (match exec st (If [ (Bool_lit false, Skip) ]) with
    | exception Interp.Eval_error _ -> true
    | () -> false)

let test_do_loops_until_false () =
  let st = state [ ("i", Value.Int 0) ] in
  exec st (Do [ (var "i" <: int 10, assign "i" (var "i" +: int 1)) ]);
  check_int "looped" 10 (State.get_int st "i")

let test_send_reaches_context () =
  let sent = ref [] in
  let ctx =
    { Process.self = "p"; send = (fun ~dst msg -> sent := (dst, msg) :: !sent) }
  in
  let st = state [ ("s", Value.Int 7) ] in
  Interp.exec ~consts:[] ~ctx st (Send { dst = "q"; tag = "msg"; args = [ var "s" ] });
  check_int "one send" 1 (List.length !sent);
  check_bool "payload" true
    (!sent = [ ("q", { Message.tag = "msg"; args = [ 7 ] }) ])

let test_arity_mismatch () =
  let st = state [ ("x", Value.Int 0) ] in
  check_bool "raises" true
    (match exec st (Assign ([ Lvar "x" ], [ int 1; int 2 ])) with
    | exception Interp.Eval_error _ -> true
    | () -> false)

(* ------------------------------------------------------------------ *)
(* Renderer *)

let test_pp_expr_precedence () =
  let s e = Format.asprintf "%a" Pp.pp_expr e in
  check_str "flat sum" "s + 1" (s (var "s" +: int 1));
  check_str "cmp over sum" "s >= Kp + lst" (s (var "s" >=: (var "Kp" +: var "lst")));
  check_str "paren for nested cmp arg" "r - w < s and s <= r"
    (s ((var "r" -: var "w" <: var "s") &&: (var "s" <=: var "r")));
  check_str "not" "~wait" (s (not_ (var "wait")));
  check_str "index" "wdw[s - r + w]" (s (Index ("wdw", var "s" -: var "r" +: var "w")))

let test_pp_stmt_forms () =
  let s st = Format.asprintf "%a" Pp.pp_stmt st in
  check_str "skip" "skip" (s Skip);
  check_str "send" "send msg(s) to q"
    (s (Send { dst = "q"; tag = "msg"; args = [ var "s" ] }));
  check_bool "simultaneous assignment" true
    (s (assign_many [ (Lvar "r", var "s"); (Lvar "j", int 1) ]) = "r, j := s, 1")

let test_pp_process_contains_paper_phrases () =
  let text = Pp.process_to_string (Models_ast.augmented_p ~kp:25 ()) in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "process header" true (contains "process p");
  check_bool "const decl" true (contains "const Kp");
  check_bool "send" true (contains "send msg(s) to q");
  check_bool "save trigger" true (contains "s >= Kp + lst");
  check_bool "guards separated" true (contains "[]");
  check_bool "wakeup leap" true (contains "pst + leap")

let test_pp_q_shows_shift_loops () =
  let text = Pp.process_to_string (Models_ast.original_q ~w:4 ()) in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "three cases" true (contains "s <= r - w");
  check_bool "simultaneous slide" true (contains "r, i, j := s, s - r + 1, 1");
  check_bool "first loop" true (contains "do i <= w");
  check_bool "second loop" true (contains "j < w");
  check_bool "receive" true (contains "rcv msg(s) from p")

(* ------------------------------------------------------------------ *)
(* The declarative models behave exactly like the closure models *)

let shared_p_vars = [ "s"; "resets"; "max_sent" ]
let shared_q_vars = [ "r"; "wdw"; "resets"; "dup"; "max_dlv" ]
let shared_aug_p_vars =
  shared_p_vars @ [ "lst"; "wait"; "pend"; "pend_wk"; "pst"; "stale_resume" ]
let shared_aug_q_vars =
  shared_q_vars @ [ "lst"; "wait"; "pend"; "pend_wk"; "pst"; "stale_edge" ]

let lockstep ~steps ~seed ~p_vars ~q_vars sys_a sys_b =
  let prng = Resets_util.Prng.create seed in
  let agree proc vars =
    List.for_all
      (fun v ->
        Value.equal
          (State.get (System.state_of sys_a proc) v)
          (State.get (System.state_of sys_b proc) v))
      vars
  in
  let rec loop k =
    if k = 0 then true
    else begin
      let ea = System.enabled_steps sys_a and eb = System.enabled_steps sys_b in
      let la = List.map System.step_label ea and lb = List.map System.step_label eb in
      if la <> lb then
        Alcotest.failf "enabled sets diverge at step %d: [%s] vs [%s]" k
          (String.concat ";" la) (String.concat ";" lb);
      match ea with
      | [] -> true
      | steps_list ->
        let i = Resets_util.Prng.int prng (List.length steps_list) in
        System.execute sys_a (List.nth ea i);
        System.execute sys_b (List.nth eb i);
        if not (agree "p" p_vars && agree "q" q_vars) then
          Alcotest.failf "states diverge at step %d" k;
        loop (k - 1)
    end
  in
  loop steps

let test_lockstep_original () =
  let bounds = Models.{ s_max = 5; p_resets = 1; q_resets = 1 } in
  let a = Models.original_system ~bounds ~capacity:2 ~adversary:true ~w:2 () in
  let b = Models_ast.original_system ~bounds ~capacity:2 ~adversary:true ~w:2 () in
  check_bool "500 lockstep steps" true
    (lockstep ~steps:500 ~seed:3 ~p_vars:shared_p_vars ~q_vars:shared_q_vars a b)

let test_lockstep_augmented () =
  let bounds = Models.{ s_max = 5; p_resets = 2; q_resets = 2 } in
  let a = Models.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:2 ~kq:2 ~w:2 () in
  let b =
    Models_ast.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:2 ~kq:2 ~w:2 ()
  in
  check_bool "500 lockstep steps" true
    (lockstep ~steps:500 ~seed:4 ~p_vars:shared_aug_p_vars ~q_vars:shared_aug_q_vars a b)

let lockstep_property =
  QCheck.Test.make ~name:"closure and AST models agree under any schedule" ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let bounds = Models.{ s_max = 4; p_resets = 1; q_resets = 1 } in
      let a =
        Models.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:1 ~kq:1 ~w:2 ()
      in
      let b =
        Models_ast.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:1 ~kq:1
          ~w:2 ()
      in
      lockstep ~steps:300 ~seed ~p_vars:shared_aug_p_vars ~q_vars:shared_aug_q_vars a b)

let test_explorer_verdicts_agree () =
  let bounds = Models.{ s_max = 3; p_resets = 0; q_resets = 1 } in
  let verdict sys =
    match
      Explorer.explore ~max_states:400_000 ~invariant:Models.discrimination_holds sys
    with
    | Explorer.Violation _ -> "violation"
    | Explorer.Exhausted _ -> "exhausted"
    | Explorer.Limit_reached _ -> "limit"
  in
  check_str "original verdicts match" "violation"
    (verdict (Models_ast.original_system ~bounds ~capacity:2 ~adversary:true ~w:2 ()));
  let bounds = Models.{ s_max = 3; p_resets = 1; q_resets = 0 } in
  check_str "augmented p-reset verdicts match" "exhausted"
    (verdict
       (Models_ast.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:1 ~kq:1
          ~w:2 ()))

let test_ast_leap_ablation () =
  (* the AST models reproduce the leap-tightness result too *)
  let bounds = Models.{ s_max = 5; p_resets = 1; q_resets = 0 } in
  let outcome leap =
    Explorer.explore ~max_states:500_000 ~invariant:Models.sender_freshness_holds
      (Models_ast.augmented_system ~bounds ~capacity:2 ?leap_p:leap ~kp:2 ~kq:2 ~w:2 ())
  in
  check_bool "2K holds" true
    (match outcome None with Explorer.Exhausted _ -> true | _ -> false);
  check_bool "K refuted" true
    (match outcome (Some 2) with Explorer.Violation _ -> true | _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ast"
    [
      ( "eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_eval_arithmetic;
          Alcotest.test_case "comparisons" `Quick test_eval_comparisons;
          Alcotest.test_case "constants" `Quick test_eval_consts_shadow_nothing;
          Alcotest.test_case "1-based arrays" `Quick test_eval_array_indexing_is_one_based;
          Alcotest.test_case "type errors" `Quick test_eval_type_errors;
        ] );
      ( "exec",
        [
          Alcotest.test_case "simultaneous assignment" `Quick test_simultaneous_assignment;
          Alcotest.test_case "simultaneous swap" `Quick test_simultaneous_swap;
          Alcotest.test_case "if" `Quick test_if_selects_true_branch;
          Alcotest.test_case "if no guard" `Quick test_if_no_true_guard_is_error;
          Alcotest.test_case "do" `Quick test_do_loops_until_false;
          Alcotest.test_case "send" `Quick test_send_reaches_context;
          Alcotest.test_case "arity" `Quick test_arity_mismatch;
        ] );
      ( "render",
        [
          Alcotest.test_case "expr precedence" `Quick test_pp_expr_precedence;
          Alcotest.test_case "stmt forms" `Quick test_pp_stmt_forms;
          Alcotest.test_case "process p phrases" `Quick test_pp_process_contains_paper_phrases;
          Alcotest.test_case "process q shift loops" `Quick test_pp_q_shows_shift_loops;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "lockstep original" `Quick test_lockstep_original;
          Alcotest.test_case "lockstep augmented" `Quick test_lockstep_augmented;
          qt lockstep_property;
          Alcotest.test_case "explorer verdicts" `Quick test_explorer_verdicts_agree;
          Alcotest.test_case "leap ablation via AST" `Quick test_ast_leap_ablation;
        ] );
    ]
