(* Quickstart: the public API in one page.

   1. Derive a security association and push a packet through ESP.
   2. Watch the anti-replay window classify sequence numbers.
   3. Run a full simulated scenario: a receiver reset with an
      adversary replaying everything — first without SAVE/FETCH, then
      with it.

   Run with: dune exec examples/quickstart.exe *)

open Resets_ipsec
open Resets_core
open Resets_sim

let () =
  (* --- 1. An SA and one ESP round trip ------------------------------ *)
  let sa_params = Sa.derive_params ~spi:0x42l ~secret:"demo-shared-secret" () in
  let wire = Esp.encap ~sa:sa_params ~seq:1 ~payload:"hello, q!" in
  (match Esp.decap ~sa:sa_params wire with
  | Ok (seq, payload) -> Format.printf "decapsulated seq=%d payload=%S@." seq payload
  | Error e -> Format.printf "decap failed: %a@." Esp.pp_error e);

  (* Tampering is caught by the ICV. *)
  let tampered = String.mapi (fun i c -> if i = 14 then 'X' else c) wire in
  (match Esp.decap ~sa:sa_params tampered with
  | Ok _ -> Format.printf "tampered packet accepted (BUG!)@."
  | Error e -> Format.printf "tampered packet rejected: %a@." Esp.pp_error e);

  (* --- 2. The anti-replay window ------------------------------------ *)
  let window = Replay_window.create Replay_window.Bitmap_impl ~w:8 in
  let admit s =
    Format.printf "  admit #%d -> %s@." s
      (Replay_window.verdict_to_string (Replay_window.admit window s))
  in
  Format.printf "window (w=8):@.";
  List.iter admit [ 1; 2; 5; 5; 3; 20; 13; 12 ];

  (* --- 3. A reset + replay attack, with and without SAVE/FETCH ------ *)
  let attack_scenario protocol =
    {
      Harness.default with
      protocol;
      horizon = Time.of_ms 30;
      (* p sends for 10 ms then goes idle; q resets at 11 ms and wakes
         1 ms later; the adversary then replays everything captured. *)
      sender_stop_at = Some (Time.of_ms 10);
      resets = Resets_workload.Reset_schedule.single ~at:(Time.of_ms 11) Receiver;
      attack = Harness.Replay_all_at (Time.of_ms 13);
    }
  in
  let report name protocol =
    let result = Harness.run (attack_scenario protocol) in
    Format.printf "%-30s replays accepted: %5d   (sent %d, delivered %d)@." name
      result.Harness.metrics.Metrics.replay_accepted result.Harness.metrics.Metrics.sent
      result.Harness.metrics.Metrics.delivered
  in
  Format.printf "@.receiver reset + replay-all attack:@.";
  report "without SAVE/FETCH:" Protocol.Volatile;
  report "with SAVE/FETCH (Kq=25):" (Protocol.save_fetch ~kp:25 ~kq:25 ())
