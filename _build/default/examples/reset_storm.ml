(* Reset storm: Section 4's second consideration, stress-tested.

   A flaky host resets over and over — sometimes again before the
   first periodic SAVE after the previous wakeup has even happened.
   The wakeup procedure (FETCH, add 2K, then a *blocking* SAVE before
   resuming) is exactly what keeps repeated resets from reusing
   sequence numbers. We storm both endpoints and check the Section 5
   guarantees after every run, then show the same SAVE/FETCH cycle
   against a real filesystem store.

   Run with: dune exec examples/reset_storm.exe *)

open Resets_core
open Resets_sim
open Resets_workload

let storm ~period ~downtime ~count target =
  Reset_schedule.periodic ~every:period ~downtime ~count target

let run_storm name resets =
  let scenario =
    {
      Harness.default with
      protocol = Protocol.save_fetch ~kp:25 ~kq:25 ();
      horizon = Time.of_ms 120;
      resets;
      attack = Harness.Flood { start = Time.of_ms 1; gap = Time.of_us 40 };
    }
  in
  let r = Harness.run scenario in
  let verdict = Convergence.check ~scenario r in
  let m = r.Harness.metrics in
  Format.printf "%-28s resets(p=%d,q=%d) skipped=%-5d replays_in=%d  %s@." name
    m.Metrics.p_resets m.Metrics.q_resets m.Metrics.skipped_seqnos
    m.Metrics.replay_accepted
    (if Convergence.holds verdict then "ALL GUARANTEES HOLD"
     else Format.asprintf "VIOLATED: %a" Convergence.pp verdict)

let () =
  Format.printf "reset storms under a continuous replay flood (Kp = Kq = 25):@.@.";
  run_storm "sender storm (8x)"
    (storm ~period:(Time.of_ms 12) ~downtime:(Time.of_ms 1) ~count:8 Sender);
  run_storm "receiver storm (8x)"
    (storm ~period:(Time.of_ms 12) ~downtime:(Time.of_ms 1) ~count:8 Receiver);
  run_storm "double reset (back-to-back)"
    (Reset_schedule.merge
       (storm ~period:(Time.of_ms 30) ~downtime:(Time.of_us 150) ~count:3 Sender)
       (* the second reset lands right after wakeup, before the first
          periodic SAVE *)
       (Reset_schedule.single ~at:(Time.of_us 30300) ~downtime:(Time.of_us 150) Sender));
  run_storm "alternating both hosts"
    (Reset_schedule.merge
       (storm ~period:(Time.of_ms 25) ~downtime:(Time.of_ms 1) ~count:4 Sender)
       (storm ~period:(Time.of_ms 37) ~downtime:(Time.of_ms 1) ~count:3 Receiver));

  (* --- The same SAVE/FETCH against a real filesystem ---------------- *)
  Format.printf "@.file-backed SAVE/FETCH (what a real gateway would do):@.";
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "ipsec-resets-demo" in
  let store = Resets_persist.File_store.create ~dir in
  let open Resets_persist in
  File_store.save store ~key:"sa-0x42/send_seq" ~value:123456 ~on_complete:(fun () -> ());
  (match File_store.fetch store ~key:"sa-0x42/send_seq" with
  | Some v ->
    Format.printf "  fetched %d after 'reboot'; resuming at %d (leap 2K = 50)@." v (v + 50)
  | None -> Format.printf "  nothing stored (unexpected)@.");
  let journal = Journal.create ~file:(Filename.concat dir "journal.log") in
  List.iter
    (fun v -> Journal.save journal ~key:"sa-0x42/recv_edge" ~value:v ~on_complete:ignore)
    [ 100; 200; 300 ];
  Format.printf "  journal holds %d records; fetch -> %s; compacting -> "
    (Journal.record_count journal)
    (match Journal.fetch journal ~key:"sa-0x42/recv_edge" with
    | Some v -> string_of_int v
    | None -> "none");
  Journal.compact journal;
  Format.printf "%d record(s)@." (Journal.record_count journal)
