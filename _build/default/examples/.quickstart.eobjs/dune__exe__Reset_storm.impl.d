examples/reset_storm.ml: Convergence File_store Filename Format Harness Journal List Metrics Protocol Reset_schedule Resets_core Resets_persist Resets_sim Resets_workload Time
