examples/adversary_replay.ml: Format Harness List Metrics Protocol Reset_schedule Resets_core Resets_sim Resets_workload Time
