examples/bidirectional_recovery.ml: Bidirectional Format Resets_core Resets_sim Time
