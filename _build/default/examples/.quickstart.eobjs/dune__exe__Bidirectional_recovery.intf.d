examples/bidirectional_recovery.mli:
