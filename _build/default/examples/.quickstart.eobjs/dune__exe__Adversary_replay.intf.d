examples/adversary_replay.mli:
