examples/vpn_tunnel.ml: Format Harness Metrics Protocol Reset_schedule Resets_core Resets_ipsec Resets_sim Resets_util Resets_workload Time
