examples/quickstart.mli:
