examples/model_walkthrough.mli:
