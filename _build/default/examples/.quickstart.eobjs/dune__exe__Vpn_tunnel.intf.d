examples/vpn_tunnel.mli:
