examples/reset_storm.mli:
