examples/model_walkthrough.ml: Explorer Format List Models Models_ast Pp Resets_apn String
