examples/quickstart.ml: Esp Format Harness List Metrics Protocol Replay_window Resets_core Resets_ipsec Resets_sim Resets_workload Sa String Time
