(* Every adversary strategy against every recovery discipline.

   Reproduces the three failure stories of Section 3 and shows each is
   closed by SAVE/FETCH:

   - replay-all after a receiver reset    (unbounded acceptance);
   - sender reset                         (unbounded fresh discards —
     here the adversary need not even act);
   - the wedge: both hosts reset, the adversary replays the
     highest-numbered old message to shove q's window past p.

   Run with: dune exec examples/adversary_replay.exe *)

open Resets_core
open Resets_sim
open Resets_workload

let protocols =
  [
    ("volatile", Protocol.Volatile);
    ("save/fetch", Protocol.save_fetch ~kp:25 ~kq:25 ());
  ]

let run_case name scenario_of =
  Format.printf "%s@." name;
  List.iter
    (fun (pname, protocol) ->
      let scenario = scenario_of protocol in
      let r = Harness.run scenario in
      let m = r.Harness.metrics in
      Format.printf
        "  %-12s replay_accepted=%-6d fresh_rejected=%-5d delivered=%d/%d@." pname
        m.Metrics.replay_accepted m.Metrics.fresh_rejected m.Metrics.delivered
        m.Metrics.sent)
    protocols;
  Format.printf "@."

let () =
  (* Section 3, story 1: q resets; adversary replays the full history. *)
  run_case "1. receiver reset, then replay-all (Sec. 3 para 1)" (fun protocol ->
      {
        Harness.default with
        protocol;
        horizon = Time.of_ms 40;
        sender_stop_at = Some (Time.of_ms 10);
        resets = Reset_schedule.single ~at:(Time.of_ms 11) ~downtime:(Time.of_ms 1) Receiver;
        attack = Harness.Replay_all_at (Time.of_ms 13);
      });
  (* Section 3, story 2: p resets and restarts low; its fresh traffic
     reads as replayed. No adversary needed. *)
  run_case "2. sender reset, fresh traffic discarded (Sec. 3 para 2)" (fun protocol ->
      {
        Harness.default with
        protocol;
        horizon = Time.of_ms 40;
        resets = Reset_schedule.single ~at:(Time.of_ms 10) ~downtime:(Time.of_ms 1) Sender;
      });
  (* Section 3, story 3: both reset; adversary wedges the window. *)
  run_case "3. both reset + wedge replay (Sec. 3 para 3)" (fun protocol ->
      {
        Harness.default with
        protocol;
        horizon = Time.of_ms 40;
        resets = Reset_schedule.both ~at:(Time.of_ms 10) ~downtime:(Time.of_ms 1) ();
        attack = Harness.Wedge_at (Time.of_ms 11);
      });
  Format.printf
    "volatile: attacks land (nonzero replay_accepted / huge discards).@.\
     save/fetch: replay_accepted = 0 and discards bounded by 2K = 50.@."
