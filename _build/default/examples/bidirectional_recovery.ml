(* Section 6: surviving prolonged resets on a bidirectional pair.

   The host that stays up detects its peer's death (traffic-based DPD)
   and keeps the SAs alive for a bounded grace period. When the peer
   returns, its first secured message — carrying the leaped sequence
   number — doubles as the "I am back" announcement. A replayed copy
   of that announcement is rejected by the ordinary window check,
   which is the paper's answer to "why not just send a reset
   notification": notifications can be replayed, window-cleared fresh
   sequence numbers cannot.

   Run with: dune exec examples/bidirectional_recovery.exe *)

open Resets_core
open Resets_sim

let show name (o : Bidirectional.outcome) =
  Format.printf "%-34s " name;
  (match o.death_detected_at with
  | Some t -> Format.printf "death@%a  " Time.pp t
  | None -> Format.printf "death:none     ");
  Format.printf "sa=%s announce=%s replay=%s conv=%s (%d msgs after)@."
    (if o.sa_survived then "kept" else "torn")
    (if o.announce_accepted then "accepted" else "NO")
    (if o.replayed_announce_rejected then "rejected" else "ACCEPTED!")
    (match o.convergence_time with
    | Some t -> Format.asprintf "%a" Time.pp t
    | None -> "never")
    o.deliveries_after_recovery

let () =
  let cfg = Bidirectional.default_config in
  Format.printf "bidirectional pair, host A resets at t=10ms (keep-alive %a):@.@."
    Time.pp cfg.Bidirectional.keep_alive;
  show "outage 5ms (within keep-alive)"
    (Bidirectional.run ~reset_at:(Time.of_ms 10) ~downtime:(Time.of_ms 5)
       ~horizon:(Time.of_ms 100) cfg);
  show "outage 20ms + replayed announce"
    (Bidirectional.run ~replay_announce:true ~reset_at:(Time.of_ms 10)
       ~downtime:(Time.of_ms 20) ~horizon:(Time.of_ms 100) cfg);
  show "outage 80ms (exceeds keep-alive)"
    (Bidirectional.run ~reset_at:(Time.of_ms 10) ~downtime:(Time.of_ms 80)
       ~horizon:(Time.of_ms 160) cfg);
  Format.printf
    "@.the long outage crosses the keep-alive deadline: the survivor tears the@.\
     SA down (Section 6's bound on how long old traffic stays decryptable) and@.\
     the pair must fall back to full re-establishment.@."
