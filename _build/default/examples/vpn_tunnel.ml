(* VPN tunnel scenario: the paper's motivating deployment.

   A gateway pair carries steady application traffic over an ESP
   tunnel. Mid-stream, the receiving gateway reboots (power blip,
   kernel panic) and comes back a moment later. We run the identical
   workload and fault under the three recovery disciplines the paper
   discusses and print what each one costs:

   - Volatile (Section 2/3): the receiver forgets its window — every
     old message becomes replayable; we unleash the adversary to show
     it.
   - Delete & re-establish (the IETF recommendation Section 3 quotes):
     safe, but the tunnel is down for the whole renegotiation and
     everything sent meanwhile dies.
   - SAVE/FETCH (Section 4): safe, and the outage is just the reboot
     plus one disk write.

   Run with: dune exec examples/vpn_tunnel.exe *)

open Resets_core
open Resets_sim
open Resets_workload

let reset_at = Time.of_ms 20
let downtime = Time.of_ms 2

let scenario protocol =
  {
    Harness.default with
    protocol;
    horizon = Time.of_ms 80;
    message_gap = Time.of_us 8;
    traffic = Harness.Poisson;
    link_latency = Time.of_us 50;
    link_jitter = Time.of_us 5;
    resets = Reset_schedule.single ~at:reset_at ~downtime Receiver;
    (* The adversary floods replays as soon as the receiver is back. *)
    attack =
      Harness.Flood
        { start = Time.add reset_at downtime; gap = Time.of_us 8 };
  }

let row name protocol =
  let r = Harness.run (scenario protocol) in
  let m = r.Harness.metrics in
  let disruption =
    match Resets_util.Stats.Sample.count m.Metrics.disruption_times with
    | 0 -> "n/a"
    | _ ->
      Format.asprintf "%.2f ms"
        (1e3 *. Resets_util.Stats.Sample.mean m.Metrics.disruption_times)
  in
  Format.printf "%-24s %9d %9d %11d %11d %12s@." name m.Metrics.sent
    m.Metrics.delivered m.Metrics.replay_accepted m.Metrics.dropped_host_down
    disruption

let () =
  Format.printf "VPN tunnel, receiver reboot at %a (down %a), replay flood after@.@."
    Time.pp reset_at Time.pp downtime;
  Format.printf "%-24s %9s %9s %11s %11s %12s@." "recovery" "sent" "delivered"
    "replays-in" "lost-down" "disruption";
  row "volatile (Sec. 2)" Protocol.Volatile;
  row "re-establish (IETF)"
    (Protocol.Reestablish { cost = Resets_ipsec.Ike.default_cost });
  row "SAVE/FETCH (Sec. 4)" (Protocol.save_fetch ~kp:25 ~kq:25 ());
  Format.printf
    "@.'replays-in' counts adversary-injected packets the receiver delivered.@.\
     With traffic flowing continuously, even the volatile receiver's window@.\
     races ahead of the replay flood — the unbounded-acceptance attack needs@.\
     a quiet sender (see examples/adversary_replay.exe). What distinguishes@.\
     the disciplines here is cost: re-establishment turns a %a reboot@.\
     into a ~30 ms outage; SAVE/FETCH adds one disk write.@."
    Time.pp downtime
