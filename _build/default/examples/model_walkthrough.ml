(* The paper in one binary.

   Prints the paper's protocol figures (from the executable abstract
   syntax), then machine-checks the story of Sections 3-5 with the
   bounded explorer:

     1. the original anti-replay window protocol (Section 2) and the
        replay attack a receiver reset enables (Section 3);
     2. the SAVE/FETCH protocol (Section 4) surviving the same attack;
     3. that the 2K leap is exactly right: leap = K is refuted.

   Run with: dune exec examples/model_walkthrough.exe *)

open Resets_apn

let hr () = Format.printf "%s@." (String.make 72 '-')

let () =
  Format.printf "Figure (Section 2): the anti-replay window protocol@.";
  hr ();
  Format.printf "%s@.@." (Pp.process_to_string (Models_ast.original_p ()));
  Format.printf "%s@.@." (Pp.process_to_string (Models_ast.original_q ~w:2 ()));

  Format.printf "Section 3: what a receiver reset enables@.";
  hr ();
  let bounds = Models.{ s_max = 4; p_resets = 0; q_resets = 1 } in
  let sys = Models_ast.original_system ~bounds ~capacity:2 ~adversary:true ~w:2 () in
  (match Explorer.explore ~max_states:300_000 ~invariant:Models.discrimination_holds sys with
  | Explorer.Violation { states; trace } ->
    Format.printf
      "searching %d states finds a replayed message accepted (a sequence@.\
       number delivered twice). The attack, step by step:@.@."
      states;
    List.iteri (fun i step -> Format.printf "  %d. %s@." (i + 1) step) trace
  | Explorer.Exhausted _ | Explorer.Limit_reached _ ->
    Format.printf "unexpectedly safe — see test_apn@.");
  Format.printf "@.";

  Format.printf "Figure (Section 4): process p with SAVE and FETCH@.";
  hr ();
  Format.printf "%s@.@." (Pp.process_to_string (Models_ast.augmented_p ~kp:1 ()));

  Format.printf "Section 5: the same attack against SAVE/FETCH@.";
  hr ();
  let sys =
    Models_ast.augmented_system ~bounds ~capacity:2 ~adversary:true ~kp:1 ~kq:1 ~w:2 ()
  in
  (match
     Explorer.explore ~max_states:600_000 ~invariant:Models.all_section5_invariants sys
   with
  | Explorer.Exhausted { states } ->
    Format.printf
      "every one of the %d reachable states keeps all Section 5 invariants:@.\
       no duplicate delivery, fresh resumption at both ends.@."
      states
  | Explorer.Limit_reached { states } ->
    Format.printf "invariants hold across %d explored states (budget hit).@." states
  | Explorer.Violation { trace; _ } ->
    Format.printf "violated: %s@." (String.concat " ; " trace));
  Format.printf "@.";

  Format.printf "Section 5's leap, machine-checked tight@.";
  hr ();
  let leap_bounds = Models.{ s_max = 5; p_resets = 1; q_resets = 0 } in
  List.iter
    (fun (name, leap) ->
      let sys =
        Models_ast.augmented_system ~bounds:leap_bounds ~capacity:2 ?leap_p:leap ~kp:2
          ~kq:2 ~w:2 ()
      in
      match
        Explorer.explore ~max_states:600_000
          ~invariant:Models.sender_freshness_holds sys
      with
      | Explorer.Exhausted { states } ->
        Format.printf "  leap %s: holds (%d states)@." name states
      | Explorer.Limit_reached { states } ->
        Format.printf "  leap %s: holds so far (%d states)@." name states
      | Explorer.Violation { states; trace } ->
        Format.printf "  leap %s: REFUTED in %d states (%s)@." name states
          (String.concat " ; " trace))
    [ ("2K", None); ("K", Some 2); ("0", Some 0) ]
