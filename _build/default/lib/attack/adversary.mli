(** Replay adversary on the p→q path.

    Capability model, exactly the paper's: observe every packet in
    transit, and insert copies of previously observed packets at any
    time. The adversary cannot forge integrity tags (it has no keys),
    so everything it injects is a byte-for-byte replay. [mark] lets the
    harness label injected copies so metrics can distinguish "replayed
    message accepted" from ordinary deliveries; the receiver under test
    never sees the label. *)

type 'a t

val create :
  ?capacity:int ->
  link:'a Resets_sim.Link.t ->
  mark:('a -> 'a) ->
  Resets_sim.Engine.t ->
  'a t
(** Attaches a {!Recorder} to the link's transit tap. *)

val captured_count : 'a t -> int
val injected_count : 'a t -> int

(** {1 Strategies} *)

val replay_all_in_order : ?gap:Resets_sim.Time.t -> 'a t -> int
(** Section 3, first attack: after q resets, "an adversary can replay
    in order all the messages" seen so far. Injects every captured
    packet, spaced by [gap] (default: back to back at the link's own
    pacing, i.e. zero gap). Returns how many were injected. *)

val replay_latest : 'a t -> bool
(** Section 3, third attack (the wedge): replay the highest-numbered
    (most recent) captured message, forcing q's window far ahead of
    p's sequence number. [false] when nothing was captured yet. *)

val replay_nth : 'a t -> int -> bool
(** Replay the [i]-th oldest captured packet. *)

val replay_matching : 'a t -> ('a -> bool) -> bool
(** Replay the most recent captured packet satisfying the predicate
    (e.g. "sequence number in the gap the receiver just leapt over"). *)

val start_flood : gap:Resets_sim.Time.t -> 'a t -> unit
(** Continuously cycle through the capture buffer, injecting one packet
    every [gap], until {!stop_flood}. Models a sustained replay
    flood. *)

val stop_flood : 'a t -> unit
