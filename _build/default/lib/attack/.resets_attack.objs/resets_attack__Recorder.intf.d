lib/attack/recorder.mli:
