lib/attack/adversary.ml: Engine Link List Recorder Resets_sim Time
