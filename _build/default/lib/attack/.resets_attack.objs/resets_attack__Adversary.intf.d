lib/attack/adversary.mli: Resets_sim
