lib/attack/recorder.ml: List Resets_util Ring
