open Resets_util
open Resets_sim

type target = Sender | Receiver

type event = {
  at : Time.t;
  target : target;
  downtime : Time.t;
}

type t = event list

let none = []

let default_downtime = Time.of_ms 1

let sort events = List.sort (fun a b -> Time.compare a.at b.at) events

let single ~at ?(downtime = default_downtime) target = [ { at; target; downtime } ]

let both ~at ?(downtime = default_downtime) ?(skew = Time.zero) () =
  sort
    [
      { at; target = Sender; downtime };
      { at = Time.add at skew; target = Receiver; downtime };
    ]

let periodic ~every ?(downtime = default_downtime) ~count target =
  if count < 0 then invalid_arg "Reset_schedule.periodic: negative count";
  List.init count (fun i -> { at = Time.mul every (i + 1); target; downtime })

let random ~mtbf ~horizon ?(downtime = default_downtime) ~prng target =
  let mtbf_ns = Int64.to_float (Time.to_ns mtbf) in
  let horizon_ns = Time.to_ns horizon in
  let rec loop acc now =
    let gap = Prng.exponential prng (1. /. mtbf_ns) in
    let next = Int64.add now (Int64.of_float gap) in
    if Int64.compare next horizon_ns > 0 then List.rev acc
    else loop ({ at = Time.of_ns next; target; downtime } :: acc) next
  in
  loop [] 0L

let merge a b = sort (a @ b)
