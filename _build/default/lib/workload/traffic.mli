(** Traffic models: inter-message gap generators.

    The paper measures SAVE intervals "in terms of the number of
    messages, rather than in terms of time, because the rate of message
    generation may change over time" — these generators provide the
    changing rates the protocol must cope with. *)

type t
(** A stateful stream of inter-message gaps. *)

val next_gap : t -> Resets_sim.Time.t

val constant : gap:Resets_sim.Time.t -> t
(** Fixed message spacing; the paper's example (4 µs per 1000-byte
    message) is [constant ~gap:(Time.of_us 4)]. *)

val poisson : mean_gap:Resets_sim.Time.t -> prng:Resets_util.Prng.t -> t
(** Exponentially distributed gaps (Poisson arrivals). *)

val bursty :
  on_gap:Resets_sim.Time.t ->
  off_duration:Resets_sim.Time.t ->
  burst_length:int ->
  prng:Resets_util.Prng.t ->
  t
(** On/off source: bursts of [burst_length] messages spaced [on_gap],
    separated by idle periods of [off_duration] (±50% jitter). Models
    the "rate may change over time" argument for message-counted SAVE
    intervals. *)

val of_fun : (unit -> Resets_sim.Time.t) -> t
(** Escape hatch for custom models. *)
