lib/workload/traffic.ml: Float Int64 Prng Resets_sim Resets_util Time
