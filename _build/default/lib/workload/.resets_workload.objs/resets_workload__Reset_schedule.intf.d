lib/workload/reset_schedule.mli: Resets_sim Resets_util
