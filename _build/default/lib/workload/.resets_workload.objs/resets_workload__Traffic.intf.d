lib/workload/traffic.mli: Resets_sim Resets_util
