lib/workload/reset_schedule.ml: Int64 List Prng Resets_sim Resets_util Time
