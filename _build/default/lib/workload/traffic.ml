open Resets_util
open Resets_sim

type t = unit -> Time.t

let next_gap t = t ()

let constant ~gap () = gap

let poisson ~mean_gap ~prng =
  let mean_ns = Int64.to_float (Time.to_ns mean_gap) in
  fun () ->
    let sample = Prng.exponential prng (1. /. mean_ns) in
    Time.of_ns (Int64.of_float sample)

let bursty ~on_gap ~off_duration ~burst_length ~prng =
  if burst_length <= 0 then invalid_arg "Traffic.bursty: burst_length must be positive";
  let remaining = ref burst_length in
  fun () ->
    if !remaining > 0 then begin
      decr remaining;
      on_gap
    end
    else begin
      remaining := burst_length - 1;
      let off_ns = Int64.to_float (Time.to_ns off_duration) in
      let jitter = (Prng.unit_float prng -. 0.5) *. off_ns in
      Time.of_ns (Int64.of_float (Float.max 0. (off_ns +. jitter)))
    end

let of_fun f = f
