
type error = Esp.error

let header_length = 12

let icv ~(sa : Sa.params) covered =
  Resets_crypto.Hmac.mac_truncated ~key:sa.keys.auth_key
    ~bytes:(Sa.icv_length sa.algo.integ)
    covered

let encap ~sa ~seq ~payload =
  if seq < 0 then invalid_arg "Ah.encap: negative sequence number";
  let header = Buffer.create header_length in
  Wire.put_be32 header sa.Sa.spi;
  Wire.put_be64 header (Int64.of_int seq);
  let header = Buffer.contents header in
  let tag = icv ~sa (header ^ payload) in
  header ^ tag ^ payload

let decap ~sa packet =
  let icv_len = Sa.icv_length sa.Sa.algo.integ in
  let n = String.length packet in
  if n < header_length + icv_len then Error Esp.Malformed
  else begin
    let header = String.sub packet 0 header_length in
    let tag = String.sub packet header_length icv_len in
    let payload = String.sub packet (header_length + icv_len) (n - header_length - icv_len) in
    if not (Resets_crypto.Ct.equal tag (icv ~sa (header ^ payload))) then Error Esp.Bad_icv
    else Ok (Int64.to_int (Wire.get_be64 packet 4), payload)
  end

let seq_of_packet ~sa:_ packet =
  if String.length packet < header_length then None
  else Some (Int64.to_int (Wire.get_be64 packet 4))

let overhead ~sa = header_length + Sa.icv_length sa.Sa.algo.integ
