
type error = Malformed | Bad_icv

let error_to_string = function
  | Malformed -> "malformed"
  | Bad_icv -> "bad-icv"

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let header_length = 12 (* spi + seq *)

let nonce ~(sa : Sa.params) ~seq =
  let buf = Buffer.create 12 in
  Buffer.add_string buf sa.keys.salt;
  Wire.put_be64 buf (Int64.of_int seq);
  Buffer.contents buf

let encrypt ~(sa : Sa.params) ~seq payload =
  match sa.algo.encr with
  | Sa.Null_encr -> payload
  | Sa.Chacha20 ->
    Resets_crypto.Chacha20.crypt ~key:sa.keys.enc_key ~nonce:(nonce ~sa ~seq) payload

(* ChaCha20 decryption is the same XOR. *)
let decrypt = encrypt

let icv ~(sa : Sa.params) covered =
  Resets_crypto.Hmac.mac_truncated ~key:sa.keys.auth_key
    ~bytes:(Sa.icv_length sa.algo.integ)
    covered

let encap ~sa ~seq ~payload =
  if seq < 0 then invalid_arg "Esp.encap: negative sequence number";
  let buf = Buffer.create (header_length + String.length payload + 32) in
  Wire.put_be32 buf sa.Sa.spi;
  Wire.put_be64 buf (Int64.of_int seq);
  Buffer.add_string buf (encrypt ~sa ~seq payload);
  let covered = Buffer.contents buf in
  covered ^ icv ~sa covered

let decap ~sa packet =
  let icv_len = Sa.icv_length sa.Sa.algo.integ in
  let n = String.length packet in
  if n < header_length + icv_len then Error Malformed
  else begin
    let covered = String.sub packet 0 (n - icv_len) in
    let tag = String.sub packet (n - icv_len) icv_len in
    if not (Resets_crypto.Ct.equal tag (icv ~sa covered)) then Error Bad_icv
    else begin
      let seq = Int64.to_int (Wire.get_be64 packet 4) in
      let ciphertext = String.sub packet header_length (n - icv_len - header_length) in
      Ok (seq, decrypt ~sa ~seq ciphertext)
    end
  end

let seq_of_packet packet =
  if String.length packet < header_length then None
  else Some (Int64.to_int (Wire.get_be64 packet 4))

let spi_of_packet packet =
  if String.length packet < 4 then None else Some (Wire.get_be32 packet 0)

let overhead ~sa = header_length + Sa.icv_length sa.Sa.algo.integ

(* ---- ESN framing -------------------------------------------------- *)

let esn_header_length = 8 (* spi + seq_low *)

(* The ICV covers the reconstructed long header (full 64-bit sequence
   number), not the wire bytes — RFC 4304's implicit high-order bits. *)
let esn_covered ~(sa : Sa.params) ~seq ciphertext =
  let buf = Buffer.create (12 + String.length ciphertext) in
  Wire.put_be32 buf sa.Sa.spi;
  Wire.put_be64 buf (Int64.of_int seq);
  Buffer.add_string buf ciphertext;
  Buffer.contents buf

let encap_esn ~sa ~seq ~payload =
  if seq < 0 then invalid_arg "Esp.encap_esn: negative sequence number";
  let ciphertext = encrypt ~sa ~seq payload in
  let tag = icv ~sa (esn_covered ~sa ~seq ciphertext) in
  let buf = Buffer.create (esn_header_length + String.length ciphertext + 32) in
  Wire.put_be32 buf sa.Sa.spi;
  Wire.put_be32 buf (Int32.of_int (seq land 0xffffffff));
  Buffer.add_string buf ciphertext;
  Buffer.add_string buf tag;
  Buffer.contents buf

let decap_esn ~sa ~edge ~w packet =
  let icv_len = Sa.icv_length sa.Sa.algo.integ in
  let n = String.length packet in
  if n < esn_header_length + icv_len then Error Malformed
  else begin
    let seq_low = Int32.to_int (Wire.get_be32 packet 4) land 0xffffffff in
    let seq = Esn.infer ~edge ~w ~seq_low in
    if seq < 0 then Error Bad_icv (* pre-history epoch: cannot verify *)
    else begin
      let ciphertext = String.sub packet esn_header_length (n - icv_len - esn_header_length) in
      let tag = String.sub packet (n - icv_len) icv_len in
      if not (Resets_crypto.Ct.equal tag (icv ~sa (esn_covered ~sa ~seq ciphertext)))
      then Error Bad_icv
      else Ok (seq, decrypt ~sa ~seq ciphertext)
    end
  end
