open Resets_sim

type config = {
  interval : Time.t;
  timeout : Time.t;
  max_misses : int;
}

let default_config =
  { interval = Time.of_ms 1; timeout = Time.of_us 400; max_misses = 3 }

type t = {
  engine : Engine.t;
  config : config;
  send_probe : unit -> unit;
  on_dead : unit -> unit;
  mutable running : bool;
  mutable dead : bool;
  mutable sent : int;
  mutable misses : int;
  mutable acked_current : bool;
  mutable timer : Engine.handle option;
}

let create engine config ~send_probe ~on_dead =
  if config.max_misses <= 0 then invalid_arg "Dpd.create: max_misses must be positive";
  {
    engine;
    config;
    send_probe;
    on_dead;
    running = false;
    dead = false;
    sent = 0;
    misses = 0;
    acked_current = false;
    timer = None;
  }

let cancel_timer t =
  match t.timer with
  | None -> ()
  | Some h ->
    Engine.cancel h;
    t.timer <- None

let rec probe t =
  if t.running && not t.dead then begin
    t.sent <- t.sent + 1;
    t.acked_current <- false;
    t.send_probe ();
    t.timer <-
      Some
        (Engine.schedule_after t.engine ~after:t.config.timeout (fun () ->
             t.timer <- None;
             if not t.acked_current then begin
               t.misses <- t.misses + 1;
               if t.misses >= t.config.max_misses then begin
                 t.dead <- true;
                 t.on_dead ()
               end
             end;
             if t.running && not t.dead then schedule_next t))
  end

and schedule_next t =
  let wait = Time.diff (Time.max t.config.interval t.config.timeout) t.config.timeout in
  t.timer <- Some (Engine.schedule_after t.engine ~after:wait (fun () -> probe t))

let start t =
  if t.running then invalid_arg "Dpd.start: already started";
  t.running <- true;
  probe t

let stop t =
  t.running <- false;
  cancel_timer t

let probe_acked t =
  t.acked_current <- true;
  t.misses <- 0;
  if t.dead then begin
    t.dead <- false;
    if t.running then probe t
  end

let is_dead t = t.dead

let probes_sent t = t.sent

let misses t = t.misses
