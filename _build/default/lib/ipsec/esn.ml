let epoch = 1 lsl 32

let low_of seq = seq land (epoch - 1)

let high_of seq = seq lsr 32

let infer ~edge ~w ~seq_low =
  if w <= 0 then invalid_arg "Esn.infer: w must be positive";
  if seq_low < 0 || seq_low >= epoch then invalid_arg "Esn.infer: seq_low out of range";
  let tl = low_of edge and th = high_of edge in
  if tl >= w - 1 then
    (* Case A: the window lies within one epoch. *)
    if seq_low >= tl - (w - 1) then (th lsl 32) lor seq_low
    else ((th + 1) lsl 32) lor seq_low
  else if
    (* Case B: the window straddles the epoch boundary below tl. *)
    seq_low >= tl - (w - 1) + epoch
  then (((th - 1) lsl 32) lor seq_low)
  else (th lsl 32) lor seq_low

type t = {
  window : Replay_window.t;
}

let create ?(impl = Replay_window.Bitmap_impl) ~w () =
  { window = Replay_window.create impl ~w }

let edge t = Replay_window.right_edge t.window

let admit_low t seq_low =
  let full =
    infer ~edge:(edge t) ~w:(Replay_window.w t.window) ~seq_low
  in
  (Replay_window.admit t.window full, full)

let resume_at t full = Replay_window.resume_at t.window full

let volatile_reset t = Replay_window.volatile_reset t.window
