(** IKE-lite: a cost-faithful model of SA (re-)establishment.

    The paper's Section 3 argues that the IETF-recommended response to
    a reset — delete the SA and renegotiate it — is expensive: "the
    recomputation of most attributes of this SA, especially the keys
    and shared secrets, and the renegotiation of all these attributes
    using a secured connection". This module models that cost without
    implementing full IKEv2:

    - 4 messages over the link (init/init, auth/auth), i.e. 2 RTTs;
    - one expensive asymmetric computation per side per phase, modeled
      in simulated time by [cost.compute] and in real work by
      {!Resets_crypto.Kdf.stretch} with [cost.kdf_iterations];
    - key material derived from both nonces via HKDF, so the resulting
      {!Sa.params} are real keys both peers agree on. *)

type cost = {
  compute : Resets_sim.Time.t;  (** simulated time per asymmetric op *)
  rtt : Resets_sim.Time.t;  (** link round-trip time *)
  kdf_iterations : int;  (** real hashing work per asymmetric op *)
}

val default_cost : cost
(** 2 ms per asymmetric op, 10 ms RTT, 2048 hash iterations — the
    shape, not the absolute numbers, is what E7 relies on. *)

val message_count : int
(** 4. *)

val handshake_duration : cost -> Resets_sim.Time.t
(** Closed-form simulated duration of one establishment:
    [4 * compute + 2 * rtt]. *)

val establish :
  ?algo:Sa.algo ->
  ?window_width:int ->
  ?window_impl:Replay_window.impl ->
  Resets_sim.Engine.t ->
  cost:cost ->
  prng:Resets_util.Prng.t ->
  spi:int32 ->
  on_complete:(Sa.params -> unit) ->
  unit
(** Run the 4-message exchange on the simulated clock; [on_complete]
    fires [handshake_duration cost] later with the agreed parameters.
    The KDF work really executes (so wall-clock microbenchmarks of
    re-establishment are meaningful). *)

val derive_shared_params :
  ?algo:Sa.algo ->
  ?window_width:int ->
  ?window_impl:Replay_window.impl ->
  spi:int32 ->
  nonce_i:string ->
  nonce_r:string ->
  kdf_iterations:int ->
  unit ->
  Sa.params
(** The key-agreement core, exposed for tests: both sides compute this
    from the exchanged nonces. *)
