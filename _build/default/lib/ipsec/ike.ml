open Resets_util
open Resets_sim

type cost = {
  compute : Time.t;
  rtt : Time.t;
  kdf_iterations : int;
}

let default_cost =
  { compute = Time.of_ms 2; rtt = Time.of_ms 10; kdf_iterations = 2048 }

let message_count = 4

let handshake_duration cost = Time.add (Time.mul cost.compute 4) (Time.mul cost.rtt 2)

let random_nonce prng =
  String.init 32 (fun _ -> Char.chr (Prng.int prng 256))

let derive_shared_params ?algo ?window_width ?window_impl ~spi ~nonce_i ~nonce_r
    ~kdf_iterations () =
  (* Models the Diffie-Hellman agreement: an expensive stretch standing
     in for exponentiation, then HKDF over both nonces. Both peers
     compute the same value from the same exchanged inputs. *)
  let shared = Resets_crypto.Kdf.stretch ~iterations:kdf_iterations (nonce_i ^ nonce_r) in
  Sa.derive_params ?algo ?window_width ?window_impl ~spi ~secret:shared ()

let establish ?algo ?window_width ?window_impl engine ~cost ~prng ~spi ~on_complete =
  let nonce_i = random_nonce prng in
  let nonce_r = random_nonce prng in
  (* Timeline: IKE_SA_INIT request (compute, rtt/2), response (compute,
     rtt/2), IKE_AUTH request (compute, rtt/2), response (compute,
     rtt/2) = 4 computes + 2 RTTs. We schedule the single completion
     event; the intermediate messages do not interact with anything
     else in the simulations that use this model. *)
  let total = handshake_duration cost in
  Engine.schedule_after engine ~after:total (fun () ->
      let params =
        derive_shared_params ?algo ?window_width ?window_impl ~spi ~nonce_i ~nonce_r
          ~kdf_iterations:cost.kdf_iterations ()
      in
      on_complete params)
  |> ignore
