(** Extended sequence numbers (ESN, after RFC 4304).

    The paper treats sequence numbers as unbounded integers, but the
    ESP header carries only 32 bits; real IPsec recovers the full
    64-bit value from the low half plus the receiver's window state.
    This module implements that inference and an ESN-aware receiver
    facade, because SAVE/FETCH interacts with it: the persisted value
    is the full 64-bit number, and a wakeup leap can push the edge
    across a 2^32 epoch boundary, which the inference must survive.

    Terminology matches RFC 4304: [t] is the receiver's highest
    authenticated 64-bit number (our window's right edge), [w] the
    window width, [seq_low] the 32-bit value from the wire. *)

val epoch : int
(** 2^32. *)

val low_of : int -> int
(** Low 32 bits of a full sequence number. *)

val high_of : int -> int
(** Epoch index (high 32 bits). *)

val infer : edge:int -> w:int -> seq_low:int -> int
(** Reconstruct the full sequence number a packet carrying [seq_low]
    must have, given the current [edge]:

    - if the window does not straddle an epoch boundary (case A), a
      low value at or above the left edge belongs to the current
      epoch, anything lower to the next;
    - if it does straddle one (case B), low values above the wrapped
      left edge belong to the previous epoch, the rest to the
      current.

    @raise Invalid_argument if [seq_low] is outside [\[0, 2^32)] or
    [w] is not positive. *)

(** {1 ESN-aware receiving window} *)

type t

val create : ?impl:Replay_window.impl -> w:int -> unit -> t

val admit_low : t -> int -> Replay_window.verdict * int
(** Classify a wire (32-bit) sequence number; also returns the
    inferred full number. *)

val edge : t -> int

val resume_at : t -> int
 -> unit
(** Wakeup with a recovered 64-bit edge (possibly in a later epoch). *)

val volatile_reset : t -> unit
