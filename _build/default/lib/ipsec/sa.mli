(** Security associations.

    An SA, per the paper's introduction, bundles authentication and
    encryption keys, the algorithms, lifetimes, the sender's sequence
    number and the receiver's anti-replay window. The immutable part
    ({!type:params}) is what survives a reset without help — "the other
    attributes … remain the same during the lifetime of this SA" — and
    the per-packet mutable part (sequence number, window) is what the
    SAVE/FETCH protocol exists to recover. *)

type integ_alg =
  | Hmac_sha256_128  (** HMAC-SHA-256 truncated to 16 bytes *)
  | Hmac_sha256_full  (** full 32-byte tag *)

type encr_alg =
  | Chacha20
  | Null_encr  (** integrity only (AH-style payloads inside ESP) *)

type algo = {
  integ : integ_alg;
  encr : encr_alg;
}

val icv_length : integ_alg -> int

type keys = {
  auth_key : string;  (** 32 bytes *)
  enc_key : string;  (** 32 bytes *)
  salt : string;  (** 4 bytes, mixed into the per-packet nonce *)
}

type params = {
  spi : int32;  (** security parameter index *)
  algo : algo;
  keys : keys;
  window_width : int;  (** the paper's [w] *)
  window_impl : Replay_window.impl;
  lifetime_packets : int option;  (** soft lifetime, if any *)
}

val default_algo : algo

val derive_params :
  ?algo:algo ->
  ?window_width:int ->
  ?window_impl:Replay_window.impl ->
  ?lifetime_packets:int ->
  spi:int32 ->
  secret:string ->
  unit ->
  params
(** Derive the key material for [spi] from a shared [secret] via HKDF;
    both peers calling this with the same inputs get identical SAs. *)

(** Mutable per-endpoint state layered over shared [params]. A
    unidirectional SA has a sending side (sequence counter) and a
    receiving side (window); each endpoint instantiates the side it
    plays. *)
type t = {
  params : params;
  mutable send_seq : Resets_util.Seqno.t;  (** next to be sent, initially 1 *)
  window : Replay_window.t;  (** receiver's anti-replay window *)
  mutable packets_sent : int;
  mutable packets_received : int;
}

val create : params -> t

val next_send_seq : t -> Resets_util.Seqno.t
(** Take the next outbound sequence number (post-increments, as in the
    paper's first action of process p). *)

val lifetime_exceeded : t -> bool

val volatile_reset : t -> unit
(** A host reset as seen by this SA: sequence counter back to 1, window
    forgotten. Keys and algorithms (the [params]) survive — that is the
    paper's central observation. *)

val pp : Format.formatter -> t -> unit
