type t = (int32, Sa.t) Hashtbl.t

let create () = Hashtbl.create 16

let install t sa =
  let spi = sa.Sa.params.Sa.spi in
  if Hashtbl.mem t spi then invalid_arg "Sadb.install: duplicate SPI";
  Hashtbl.replace t spi sa

let lookup t ~spi = Hashtbl.find_opt t spi

let remove t ~spi = Hashtbl.remove t spi

let count t = Hashtbl.length t

let iter f t = Hashtbl.iter (fun _spi sa -> f sa) t

let fold f acc t = Hashtbl.fold (fun _spi sa acc -> f acc sa) t acc

let spis t = Hashtbl.fold (fun spi _sa acc -> spi :: acc) t []

let clear t = Hashtbl.reset t

let volatile_reset t = iter Sa.volatile_reset t
