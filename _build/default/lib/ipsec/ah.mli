(** AH-style encapsulation: integrity + anti-replay sequence number,
    payload in the clear.

    Wire layout: [spi(4) | seq(8) | icv | payload]; the ICV covers SPI,
    sequence number and payload. *)

type error = Esp.error

val encap : sa:Sa.params -> seq:Resets_util.Seqno.t -> payload:string -> string

val decap : sa:Sa.params -> string -> (Resets_util.Seqno.t * string, error) result

val seq_of_packet : sa:Sa.params -> string -> Resets_util.Seqno.t option

val overhead : sa:Sa.params -> int
