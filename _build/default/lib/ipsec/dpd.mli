(** Dead-peer detection (the heartbeat scheme the paper cites in its
    Section 6 discussion of prolonged resets).

    Periodically sends a probe; if [max_misses] consecutive probes go
    unanswered within [timeout], declares the peer dead. A probe is
    "answered" when the owner calls {!probe_acked} (normally from the
    receive path). *)

type config = {
  interval : Resets_sim.Time.t;  (** time between probes *)
  timeout : Resets_sim.Time.t;  (** how long to wait for each ack *)
  max_misses : int;  (** consecutive misses before declaring death *)
}

val default_config : config

type t

val create :
  Resets_sim.Engine.t ->
  config ->
  send_probe:(unit -> unit) ->
  on_dead:(unit -> unit) ->
  t

val start : t -> unit
(** Begin probing. @raise Invalid_argument if already started. *)

val stop : t -> unit
(** Cancel outstanding probes and timers. *)

val probe_acked : t -> unit
(** The peer answered; resets the miss counter. Also revives a [t] that
    had declared the peer dead (the peer woke up). *)

val is_dead : t -> bool

val probes_sent : t -> int

val misses : t -> int
(** Current consecutive miss count. *)
