lib/ipsec/esn.ml: Replay_window
