lib/ipsec/dpd.ml: Engine Resets_sim Time
