lib/ipsec/wire.ml: Buffer Char Int32 Int64 String
