lib/ipsec/wire.mli: Buffer
