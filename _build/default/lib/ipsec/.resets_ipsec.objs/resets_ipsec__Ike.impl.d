lib/ipsec/ike.ml: Char Engine Prng Resets_crypto Resets_sim Resets_util Sa String Time
