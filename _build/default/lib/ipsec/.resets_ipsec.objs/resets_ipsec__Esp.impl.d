lib/ipsec/esp.ml: Buffer Esn Format Int32 Int64 Resets_crypto Sa String Wire
