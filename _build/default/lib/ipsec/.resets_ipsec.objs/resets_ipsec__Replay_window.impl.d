lib/ipsec/replay_window.ml: Array Bytes Char Format Resets_util Seqno
