lib/ipsec/sadb.ml: Hashtbl Sa
