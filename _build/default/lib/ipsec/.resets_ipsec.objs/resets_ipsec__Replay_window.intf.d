lib/ipsec/replay_window.mli: Format Resets_util
