lib/ipsec/ike.mli: Replay_window Resets_sim Resets_util Sa
