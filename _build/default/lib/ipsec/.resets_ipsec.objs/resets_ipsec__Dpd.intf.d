lib/ipsec/dpd.mli: Resets_sim
