lib/ipsec/sa.mli: Format Replay_window Resets_util
