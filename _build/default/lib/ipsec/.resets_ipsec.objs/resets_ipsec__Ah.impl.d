lib/ipsec/ah.ml: Buffer Esp Int64 Resets_crypto Sa String Wire
