lib/ipsec/ah.mli: Esp Resets_util Sa
