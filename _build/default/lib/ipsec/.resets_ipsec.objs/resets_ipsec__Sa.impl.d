lib/ipsec/sa.ml: Format Printf Replay_window Resets_crypto Resets_util Seqno String
