lib/ipsec/esn.mli: Replay_window
