lib/ipsec/sadb.mli: Sa
