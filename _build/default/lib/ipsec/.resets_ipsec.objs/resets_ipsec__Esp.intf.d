lib/ipsec/esp.mli: Format Resets_util Sa
