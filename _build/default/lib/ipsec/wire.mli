(** Binary (de)serialization helpers shared by the ESP and AH codecs. *)

val put_be32 : Buffer.t -> int32 -> unit
val put_be64 : Buffer.t -> int64 -> unit

val get_be32 : string -> int -> int32
(** @raise Invalid_argument on short input. *)

val get_be64 : string -> int -> int64
(** @raise Invalid_argument on short input. *)
