let hex_chars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code s.[i] in
    Bytes.set out (2 * i) hex_chars.[b lsr 4];
    Bytes.set out ((2 * i) + 1) hex_chars.[b land 0xf]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: non-hex character"

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = nibble s.[2 * i] and lo = nibble s.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string out
