(** Hexadecimal encoding of byte strings (debugging, test vectors). *)

val encode : string -> string
(** Lowercase hex, two characters per byte. *)

val decode : string -> string
(** Inverse of [encode]; accepts upper or lower case.
    @raise Invalid_argument on odd length or non-hex characters. *)
