type t = int

let zero = 0
let first = 1
let succ s = s + 1
let compare = Int.compare
let equal = Int.equal

let is_stale ~right ~w s = s <= right - w

let in_window ~right ~w s = s > right - w && s <= right

let beyond ~right s = s > right

let window_index ~right ~w s =
  if not (in_window ~right ~w s) then
    invalid_arg "Seqno.window_index: sequence number not in window";
  s - right + w

let gap ~fetched ~lost_at = lost_at - fetched

let pp ppf s = Format.fprintf ppf "#%d" s
