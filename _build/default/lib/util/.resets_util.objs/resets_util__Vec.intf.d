lib/util/vec.mli:
