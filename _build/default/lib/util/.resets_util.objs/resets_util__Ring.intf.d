lib/util/ring.mli:
