lib/util/stats.mli:
