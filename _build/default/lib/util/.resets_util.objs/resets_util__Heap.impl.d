lib/util/heap.ml: List Vec
