lib/util/seqno.mli: Format
