lib/util/seqno.ml: Format Int
