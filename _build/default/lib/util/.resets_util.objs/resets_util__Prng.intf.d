lib/util/prng.mli:
