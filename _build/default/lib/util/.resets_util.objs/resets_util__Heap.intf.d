lib/util/heap.mli:
