lib/util/hex.mli:
