(** Sequence-number arithmetic for the anti-replay window.

    The paper treats sequence numbers as unbounded integers; OCaml's
    63-bit native ints are far beyond any run length we simulate, so we
    represent sequence numbers as [int] and centralize the window-range
    predicates of Section 2 here:

    - a number [s] is {e stale} w.r.t. right edge [r] and width [w]
      when [s <= r - w];
    - it is {e in-window} when [r - w < s <= r];
    - it is {e beyond} when [s > r]. *)

type t = int

val zero : t
val first : t
(** The paper's initial sender value, 1. *)

val succ : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val is_stale : right:t -> w:int -> t -> bool
val in_window : right:t -> w:int -> t -> bool
val beyond : right:t -> t -> bool

val window_index : right:t -> w:int -> t -> int
(** 1-based index of an in-window [s] into the paper's [wdw\[1..w\]]
    array: [s - right + w]. @raise Invalid_argument if [s] is not
    in-window. *)

val gap : fetched:t -> lost_at:t -> int
(** The quantity analysed in Figures 1 and 2: distance between the
    sequence number in use at the moment of a reset and the value that
    FETCH recovers. *)

val pp : Format.formatter -> t -> unit
