open Resets_util

type event = {
  time : Time.t;
  seq : int;
  callback : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable stop_requested : bool;
  queue : event Heap.t;
}

let compare_event a b =
  match Time.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let create () =
  {
    clock = Time.zero;
    next_seq = 0;
    stop_requested = false;
    queue = Heap.create ~cmp:compare_event;
  }

let now t = t.clock

let schedule_at t ~at callback =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: time in the past";
  let event = { time = at; seq = t.next_seq; callback; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  Heap.add t.queue event;
  event

let schedule_after t ~after callback =
  schedule_at t ~at:(Time.add t.clock after) callback

let cancel event = event.cancelled <- true

let is_pending event = not event.cancelled

let pending_count t =
  let n = ref 0 in
  Heap.iter_unordered (fun e -> if not e.cancelled then incr n) t.queue;
  !n

type stop_reason = Quiescent | Time_limit | Event_limit | Stopped

(* Pop the next live event without firing it. *)
let rec next_live t =
  match Heap.peek t.queue with
  | None -> None
  | Some e when e.cancelled ->
    ignore (Heap.pop t.queue);
    next_live t
  | Some e -> Some e

let fire t e =
  ignore (Heap.pop t.queue);
  t.clock <- e.time;
  e.cancelled <- true;
  e.callback ()

let step t =
  match next_live t with
  | None -> false
  | Some e ->
    fire t e;
    true

let stop t = t.stop_requested <- true

let run ?until ?max_events t =
  t.stop_requested <- false;
  let fired = ref 0 in
  let rec loop () =
    if t.stop_requested then Stopped
    else
      match max_events with
      | Some m when !fired >= m -> Event_limit
      | Some _ | None -> (
        match next_live t with
        | None -> Quiescent
        | Some e -> (
          match until with
          | Some limit when Time.(limit < e.time) ->
            t.clock <- Time.max t.clock limit;
            Time_limit
          | Some _ | None ->
            fire t e;
            incr fired;
            loop ()))
  in
  loop ()
