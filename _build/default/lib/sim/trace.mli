(** Structured event trace.

    Components record what happened (sends, receives, discards, SAVEs,
    resets…); tests and the CLI read the trace back. Bounded by a ring
    so long simulations do not grow without bound. *)

type level = Debug | Info | Warn

type entry = {
  time : Time.t;
  level : level;
  source : string;  (** component, e.g. "p", "q", "disk.p" *)
  event : string;  (** short machine-readable tag, e.g. "save.begin" *)
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 65536 entries. *)

val record :
  t -> time:Time.t -> ?level:level -> source:string -> event:string -> string -> unit

val entries : t -> entry list
(** Oldest first (up to capacity). *)

val count : t -> int
(** Total recorded, including entries already evicted from the ring. *)

val find : t -> event:string -> entry list
(** Retained entries whose [event] tag matches exactly. *)

val on_record : t -> (entry -> unit) -> unit
(** Register a tap invoked on every record (metrics hooks). *)

val pp_entry : Format.formatter -> entry -> unit

val dump : Format.formatter -> t -> unit
