type t = int64

let zero = 0L

let of_ns ns =
  if Int64.compare ns 0L < 0 then invalid_arg "Time.of_ns: negative";
  ns

let of_us us = of_ns (Int64.mul (Int64.of_int us) 1_000L)

let of_ms ms = of_ns (Int64.mul (Int64.of_int ms) 1_000_000L)

let of_sec s =
  if not (Float.is_finite s) || s < 0. then invalid_arg "Time.of_sec: invalid";
  Int64.of_float (s *. 1e9)

let to_ns t = t
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_sec t = Int64.to_float t /. 1e9

let add = Int64.add

let diff a b =
  if Int64.compare b a > 0 then invalid_arg "Time.diff: negative result";
  Int64.sub a b

let mul t k =
  if k < 0 then invalid_arg "Time.mul: negative factor";
  Int64.mul t (Int64.of_int k)

let compare = Int64.compare
let equal = Int64.equal
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let min a b = if a <= b then a else b
let max a b = if a <= b then b else a

let pp ppf t =
  let ns = Int64.to_float t in
  if Stdlib.( < ) ns 1e3 then Format.fprintf ppf "%.0fns" ns
  else if Stdlib.( < ) ns 1e6 then Format.fprintf ppf "%.2fus" (ns /. 1e3)
  else if Stdlib.( < ) ns 1e9 then Format.fprintf ppf "%.3fms" (ns /. 1e6)
  else Format.fprintf ppf "%.4fs" (ns /. 1e9)
