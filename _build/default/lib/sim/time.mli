(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation. Integer time keeps event ordering exact and runs
    reproducible; all public constructors convert into it. *)

type t = private int64

val zero : t
val of_ns : int64 -> t
(** @raise Invalid_argument on negative input. *)

val of_us : int -> t
val of_ms : int -> t
val of_sec : float -> t
(** @raise Invalid_argument on negative or non-finite input. *)

val to_ns : t -> int64
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is [a - b]. @raise Invalid_argument if [b > a]. *)

val mul : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable with an adaptive unit (ns/µs/ms/s). *)
