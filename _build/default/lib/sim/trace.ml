open Resets_util

type level = Debug | Info | Warn

type entry = {
  time : Time.t;
  level : level;
  source : string;
  event : string;
  detail : string;
}

type t = {
  ring : entry Ring.t;
  mutable total : int;
  mutable taps : (entry -> unit) list;
}

let create ?(capacity = 65536) () =
  { ring = Ring.create capacity; total = 0; taps = [] }

let record t ~time ?(level = Info) ~source ~event detail =
  let entry = { time; level; source; event; detail } in
  ignore (Ring.push t.ring entry);
  t.total <- t.total + 1;
  List.iter (fun tap -> tap entry) t.taps

let entries t = Ring.to_list t.ring

let count t = t.total

let find t ~event =
  List.filter (fun e -> String.equal e.event event) (entries t)

let on_record t tap = t.taps <- t.taps @ [ tap ]

let pp_level ppf = function
  | Debug -> Format.pp_print_string ppf "debug"
  | Info -> Format.pp_print_string ppf "info"
  | Warn -> Format.pp_print_string ppf "warn"

let pp_entry ppf e =
  Format.fprintf ppf "[%a] %a %-8s %-16s %s" Time.pp e.time pp_level e.level
    e.source e.event e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
