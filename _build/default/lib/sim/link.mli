(** Unidirectional network link with delay, jitter, loss, reordering
    and duplication.

    The paper's channel "may lose or reorder" messages and hosts an
    adversary who "can insert … a copy of any message that was sent
    earlier"; {!on_transit} exposes every packet to observers (the
    adversary's recorder), and {!inject} lets an observer insert
    packets of its own. *)

type 'a t

type faults = {
  loss_prob : float;  (** i.i.d. drop probability *)
  dup_prob : float;  (** probability a packet is delivered twice *)
  reorder_prob : float;  (** probability a packet takes the slow path *)
  reorder_delay : Time.t;  (** extra delay on the slow path *)
}

val no_faults : faults

val create :
  ?name:string ->
  ?trace:Trace.t ->
  ?faults:faults ->
  ?jitter:Time.t ->
  ?prng:Resets_util.Prng.t ->
  latency:Time.t ->
  Engine.t ->
  'a t
(** A link with base one-way [latency] plus uniform [jitter]. Faults
    and jitter need a [prng]; omitting it with non-zero faults raises
    [Invalid_argument]. *)

val set_deliver : 'a t -> ('a -> unit) -> unit
(** Install the receive handler (the far endpoint). Packets arriving
    while no handler is installed are counted as dropped. *)

val send : 'a t -> 'a -> unit
(** Enqueue a packet at the near end. *)

val inject : 'a t -> 'a -> unit
(** Adversarial insertion: delivered like a normal packet but not
    reported to {!on_transit} observers (the adversary need not see its
    own packets) and never dropped or reordered (the adversary times
    its own injections). *)

val on_transit : 'a t -> ('a -> unit) -> unit
(** Observe every legitimately sent packet (even ones later lost — an
    on-path adversary sees the wire before the drop). *)

val set_up : 'a t -> bool -> unit
(** A downed link drops everything sent through it. *)

val sent : 'a t -> int
val delivered : 'a t -> int
val dropped : 'a t -> int
val duplicated : 'a t -> int
val reordered : 'a t -> int
val injected : 'a t -> int
