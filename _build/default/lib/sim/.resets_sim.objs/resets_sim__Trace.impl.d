lib/sim/trace.ml: Format List Resets_util Ring String Time
