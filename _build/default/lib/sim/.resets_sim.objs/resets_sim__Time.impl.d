lib/sim/time.ml: Float Format Int64 Stdlib
