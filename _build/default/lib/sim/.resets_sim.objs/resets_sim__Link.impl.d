lib/sim/link.ml: Engine Int64 List Prng Resets_util Time Trace
