lib/sim/link.mli: Engine Resets_util Time Trace
