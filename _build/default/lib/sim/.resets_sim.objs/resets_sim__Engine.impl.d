lib/sim/engine.ml: Heap Int Resets_util Time
