(** Real file-backed store.

    The paper notes SAVE/FETCH "can be implemented by write-to-file and
    read-from-file operations in an operating system"; this module is
    that implementation. Writes are atomic (write to a temporary file,
    then rename), so a value is either the old or the new one — never
    torn — matching the [Store.S] contract. Used by the CLI and
    examples when run against a real filesystem. *)

type t

val create : dir:string -> t
(** Store values as files under [dir] (created if missing). *)

include Store.S with type t := t
(** [save] here completes synchronously (the callback runs before
    [save] returns); [crash] is a no-op because a real filesystem's
    durable state is exactly what the files hold. *)

val keys : t -> string list
(** Keys present on disk, unordered. *)

val remove : t -> key:string -> unit
(** Delete a stored value (used to model "delete the SA"). *)
