(** Append-only journal store (ablation of {!File_store}).

    Instead of overwriting one cell per key, every SAVE appends a
    [key value] record; FETCH replays the journal and keeps the last
    record per key. Appends are cheaper than atomic-rename updates on
    real disks, at the cost of recovery-time scan work — the trade-off
    is measured in the benchmark harness. A partially appended final
    record (torn write) is detected by a per-record checksum and
    ignored, preserving the [Store.S] durability contract. *)

type t

val create : file:string -> t

include Store.S with type t := t

val record_count : t -> int
(** Records currently in the journal file (including superseded
    ones). *)

val compact : t -> unit
(** Rewrite the journal keeping only the latest record per key. *)
