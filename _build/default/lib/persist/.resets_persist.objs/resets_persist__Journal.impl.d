lib/persist/journal.ml: Char Fun Hashtbl Int64 List Printf Resets_util String Sys
