lib/persist/sim_disk.mli: Engine Resets_sim Resets_util Store Time Trace
