lib/persist/store.mli:
