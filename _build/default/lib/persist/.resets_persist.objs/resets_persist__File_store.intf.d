lib/persist/file_store.mli: Store
