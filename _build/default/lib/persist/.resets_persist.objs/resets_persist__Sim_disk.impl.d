lib/persist/sim_disk.ml: Engine Hashtbl Int64 List Printf Prng Resets_sim Resets_util String Time Trace
