lib/persist/journal.mli: Store
