lib/persist/file_store.ml: Array Filename List Resets_util String Sys
