(** SHA-256 (FIPS 180-4), implemented from scratch.

    Provides the integrity primitive under the IPsec substrate's ICVs;
    validated against the FIPS test vectors in the test suite. *)

type ctx

val init : unit -> ctx

val feed : ctx -> string -> unit
(** Absorb bytes; may be called repeatedly. *)

val feed_bytes : ctx -> bytes -> off:int -> len:int -> unit

val finalize : ctx -> string
(** 32-byte digest. The context must not be reused afterwards.
    @raise Invalid_argument on reuse. *)

val digest : string -> string
(** One-shot digest of a full message. *)

val hex_digest : string -> string

val digest_size : int
(** 32. *)

val block_size : int
(** 64. *)
