(* FIPS 180-4 SHA-256. 32-bit arithmetic over Int32. *)

let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
    0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
    0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
    0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
    0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
    0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
    0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
    0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
    0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

type ctx = {
  h : int32 array; (* 8 chaining values *)
  block : Bytes.t; (* 64-byte staging buffer *)
  mutable block_len : int;
  mutable total_len : int64; (* bytes absorbed *)
  mutable finalized : bool;
  w : int32 array; (* message schedule scratch *)
}

let digest_size = 32
let block_size = 64

let init () =
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
        0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
      |];
    block = Bytes.create block_size;
    block_len = 0;
    total_len = 0L;
    finalized = false;
    w = Array.make 64 0l;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand

let big_sigma0 x = rotr x 2 ^% rotr x 13 ^% rotr x 22
let big_sigma1 x = rotr x 6 ^% rotr x 11 ^% rotr x 25
let small_sigma0 x = rotr x 7 ^% rotr x 18 ^% Int32.shift_right_logical x 3
let small_sigma1 x = rotr x 17 ^% rotr x 19 ^% Int32.shift_right_logical x 10
let ch x y z = (x &% y) ^% (Int32.lognot x &% z)
let maj x y z = (x &% y) ^% (x &% z) ^% (y &% z)

let get_be32 b off =
  let byte i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Int32.logor
    (Int32.shift_left (byte 0) 24)
    (Int32.logor
       (Int32.shift_left (byte 1) 16)
       (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <- get_be32 block (off + (4 * i))
  done;
  for i = 16 to 63 do
    w.(i) <- small_sigma1 w.(i - 2) +% w.(i - 7) +% small_sigma0 w.(i - 15) +% w.(i - 16)
  done;
  let a = ref ctx.h.(0) and b = ref ctx.h.(1) and c = ref ctx.h.(2) and d = ref ctx.h.(3) in
  let e = ref ctx.h.(4) and f = ref ctx.h.(5) and g = ref ctx.h.(6) and h = ref ctx.h.(7) in
  for i = 0 to 63 do
    let t1 = !h +% big_sigma1 !e +% ch !e !f !g +% k.(i) +% w.(i) in
    let t2 = big_sigma0 !a +% maj !a !b !c in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  ctx.h.(0) <- ctx.h.(0) +% !a;
  ctx.h.(1) <- ctx.h.(1) +% !b;
  ctx.h.(2) <- ctx.h.(2) +% !c;
  ctx.h.(3) <- ctx.h.(3) +% !d;
  ctx.h.(4) <- ctx.h.(4) +% !e;
  ctx.h.(5) <- ctx.h.(5) +% !f;
  ctx.h.(6) <- ctx.h.(6) +% !g;
  ctx.h.(7) <- ctx.h.(7) +% !h

let feed_bytes ctx src ~off ~len =
  if ctx.finalized then invalid_arg "Sha256.feed: context already finalized";
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes: out of bounds";
  ctx.total_len <- Int64.add ctx.total_len (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled staging block first. *)
  if ctx.block_len > 0 then begin
    let take = min !remaining (block_size - ctx.block_len) in
    Bytes.blit src !pos ctx.block ctx.block_len take;
    ctx.block_len <- ctx.block_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.block_len = block_size then begin
      compress ctx ctx.block 0;
      ctx.block_len <- 0
    end
  end;
  while !remaining >= block_size do
    compress ctx src !pos;
    pos := !pos + block_size;
    remaining := !remaining - block_size
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block 0 !remaining;
    ctx.block_len <- !remaining
  end

let feed ctx s =
  feed_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: context already finalized";
  let bit_len = Int64.mul ctx.total_len 8L in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let rem = (ctx.block_len + 1 + 8) mod block_size in
    if rem = 0 then 1 else 1 + (block_size - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len shift) 0xffL)))
  done;
  feed_bytes ctx tail ~off:0 ~len:(Bytes.length tail);
  assert (ctx.block_len = 0);
  ctx.finalized <- true;
  let out = Bytes.create digest_size in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (Int32.to_int v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let hex_digest s = Resets_util.Hex.encode (digest s)
