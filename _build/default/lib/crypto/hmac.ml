let block_size = Sha256.block_size

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.unsafe_to_string padded

let xor_with s byte =
  String.map (fun c -> Char.chr (Char.code c lxor byte)) s

let mac ~key msg =
  let key = normalize_key key in
  let inner =
    let ctx = Sha256.init () in
    Sha256.feed ctx (xor_with key 0x36);
    Sha256.feed ctx msg;
    Sha256.finalize ctx
  in
  let ctx = Sha256.init () in
  Sha256.feed ctx (xor_with key 0x5c);
  Sha256.feed ctx inner;
  Sha256.finalize ctx

let mac_truncated ~key ~bytes msg =
  if bytes < 1 || bytes > Sha256.digest_size then
    invalid_arg "Hmac.mac_truncated: tag length out of range";
  String.sub (mac ~key msg) 0 bytes

let verify ~key ~tag msg =
  let n = String.length tag in
  n >= 1 && n <= Sha256.digest_size && Ct.equal tag (String.sub (mac ~key msg) 0 n)
