(** HKDF-style key derivation (RFC 5869, with HMAC-SHA-256).

    The IKE-lite handshake derives its SA keys through this module; its
    deliberate computational cost is what makes "re-establish the whole
    SA" measurably expensive in experiment E7. *)

val extract : salt:string -> ikm:string -> string
(** 32-byte pseudo-random key. *)

val expand : prk:string -> info:string -> length:int -> string
(** Derive [length] bytes (at most 255 × 32).
    @raise Invalid_argument when out of range. *)

val derive : salt:string -> ikm:string -> info:string -> length:int -> string
(** [extract] then [expand]. *)

val stretch : iterations:int -> string -> string
(** Iterated hashing (PBKDF-like cost knob): hash the input [iterations]
    times. Models the expensive exponentiation of a real key exchange
    in the IKE-lite substrate; cost is linear in [iterations]. *)
