(** HMAC-SHA-256 (RFC 2104), the integrity-check-value algorithm used
    by the ESP/AH substrate. Validated against RFC 4231 vectors. *)

val mac : key:string -> string -> string
(** 32-byte tag. Keys longer than the block size are hashed first, per
    RFC 2104. *)

val mac_truncated : key:string -> bytes:int -> string -> string
(** Leading [bytes] of the tag (ESP commonly truncates to 12 or 16).
    @raise Invalid_argument if [bytes] is not in [\[1, 32\]]. *)

val verify : key:string -> tag:string -> string -> bool
(** Constant-time check of a (possibly truncated) tag. *)
