(** ChaCha20 stream cipher (RFC 8439), the confidentiality primitive
    for the ESP substrate. Encryption and decryption are the same
    operation. Validated against the RFC 8439 test vector. *)

val key_size : int
(** 32 bytes. *)

val nonce_size : int
(** 12 bytes. *)

val crypt : key:string -> nonce:string -> ?counter:int32 -> string -> string
(** XOR the input with the ChaCha20 keystream.
    @raise Invalid_argument on wrong key or nonce length. *)

val block : key:string -> nonce:string -> counter:int32 -> string
(** One 64-byte keystream block (exposed for tests). *)
