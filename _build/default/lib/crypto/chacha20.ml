let key_size = 32
let nonce_size = 12

let rotl x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor

let quarter_round st a b c d =
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl (st.(d) ^% st.(a)) 16;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl (st.(b) ^% st.(c)) 12;
  st.(a) <- st.(a) +% st.(b);
  st.(d) <- rotl (st.(d) ^% st.(a)) 8;
  st.(c) <- st.(c) +% st.(d);
  st.(b) <- rotl (st.(b) ^% st.(c)) 7

let get_le32 s off =
  let byte i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor (byte 0)
    (Int32.logor
       (Int32.shift_left (byte 1) 8)
       (Int32.logor (Int32.shift_left (byte 2) 16) (Int32.shift_left (byte 3) 24)))

let set_le32 b off v =
  Bytes.set b off (Char.chr (Int32.to_int v land 0xff));
  Bytes.set b (off + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff))

let init_state ~key ~nonce ~counter =
  let st = Array.make 16 0l in
  (* "expand 32-byte k" *)
  st.(0) <- 0x61707865l;
  st.(1) <- 0x3320646el;
  st.(2) <- 0x79622d32l;
  st.(3) <- 0x6b206574l;
  for i = 0 to 7 do
    st.(4 + i) <- get_le32 key (4 * i)
  done;
  st.(12) <- counter;
  for i = 0 to 2 do
    st.(13 + i) <- get_le32 nonce (4 * i)
  done;
  st

let block ~key ~nonce ~counter =
  if String.length key <> key_size then invalid_arg "Chacha20: key must be 32 bytes";
  if String.length nonce <> nonce_size then invalid_arg "Chacha20: nonce must be 12 bytes";
  let initial = init_state ~key ~nonce ~counter in
  let st = Array.copy initial in
  for _round = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    set_le32 out (4 * i) (st.(i) +% initial.(i))
  done;
  Bytes.unsafe_to_string out

let crypt ~key ~nonce ?(counter = 1l) input =
  let n = String.length input in
  let out = Bytes.create n in
  let blocks = (n + 63) / 64 in
  for b = 0 to blocks - 1 do
    let ks = block ~key ~nonce ~counter:(Int32.add counter (Int32.of_int b)) in
    let off = 64 * b in
    let len = min 64 (n - off) in
    for i = 0 to len - 1 do
      Bytes.set out (off + i) (Char.chr (Char.code input.[off + i] lxor Char.code ks.[i]))
    done
  done;
  Bytes.unsafe_to_string out
