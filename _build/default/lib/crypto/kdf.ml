let hash_len = Sha256.digest_size

let extract ~salt ~ikm = Hmac.mac ~key:salt ikm

let expand ~prk ~info ~length =
  if length <= 0 || length > 255 * hash_len then
    invalid_arg "Kdf.expand: length out of range";
  let blocks = (length + hash_len - 1) / hash_len in
  let buf = Buffer.create (blocks * hash_len) in
  let previous = ref "" in
  for i = 1 to blocks do
    let data = !previous ^ info ^ String.make 1 (Char.chr i) in
    previous := Hmac.mac ~key:prk data;
    Buffer.add_string buf !previous
  done;
  String.sub (Buffer.contents buf) 0 length

let derive ~salt ~ikm ~info ~length = expand ~prk:(extract ~salt ~ikm) ~info ~length

let stretch ~iterations input =
  if iterations < 0 then invalid_arg "Kdf.stretch: negative iterations";
  let rec loop acc n = if n = 0 then acc else loop (Sha256.digest acc) (n - 1) in
  loop input iterations
