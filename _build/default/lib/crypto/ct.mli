(** Constant-time byte-string comparison for MAC verification. *)

val equal : string -> string -> bool
(** [equal a b] compares without early exit. Strings of different
    lengths compare unequal (length is not secret). *)
