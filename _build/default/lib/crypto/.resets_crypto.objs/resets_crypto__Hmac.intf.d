lib/crypto/hmac.mli:
