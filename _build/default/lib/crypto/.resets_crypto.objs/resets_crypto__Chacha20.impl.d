lib/crypto/chacha20.ml: Array Bytes Char Int32 String
