lib/crypto/kdf.mli:
