lib/crypto/kdf.ml: Buffer Char Hmac Sha256 String
