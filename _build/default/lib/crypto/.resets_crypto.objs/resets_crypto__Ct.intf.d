lib/crypto/ct.mli:
