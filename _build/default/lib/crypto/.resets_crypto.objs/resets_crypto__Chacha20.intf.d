lib/crypto/chacha20.mli:
