lib/crypto/sha256.ml: Array Bytes Char Int32 Int64 Resets_util String
