lib/crypto/ct.ml: Char String
