type expr =
  | Int_lit of int
  | Bool_lit of bool
  | Var of string
  | Index of string * expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Le of expr * expr
  | Lt of expr * expr
  | Ge of expr * expr
  | Gt of expr * expr
  | Eq of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type lhs =
  | Lvar of string
  | Lindex of string * expr

type stmt =
  | Skip
  | Assign of lhs list * expr list
  | Send of { dst : string; tag : string; args : expr list }
  | If of (expr * stmt) list
  | Do of (expr * stmt) list
  | Seq of stmt list

type var_decl = {
  var_name : string;
  init : Value.t;
  comment : string option;
  ghost : bool;
}

type action =
  | Guarded of { label : string; guard : expr; body : stmt }
  | Receive of {
      label : string;
      from_ : string;
      tag : string;
      binder : string;
      guard : expr;
      body : stmt;
    }

type process = {
  name : string;
  consts : (string * int) list;
  vars : var_decl list;
  actions : action list;
}

let var name = Var name
let int i = Int_lit i
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( <=: ) a b = Le (a, b)
let ( <: ) a b = Lt (a, b)
let ( >=: ) a b = Ge (a, b)
let ( >: ) a b = Gt (a, b)
let ( =: ) a b = Eq (a, b)
let ( &&: ) a b = And (a, b)
let not_ e = Not e
let assign name e = Assign ([ Lvar name ], [ e ])
let assign_many pairs = Assign (List.map fst pairs, List.map snd pairs)
let seq stmts = Seq stmts

let plain_var ?comment var_name init = { var_name; init; comment; ghost = false }
let ghost_var ?comment var_name init = { var_name; init; comment; ghost = true }
