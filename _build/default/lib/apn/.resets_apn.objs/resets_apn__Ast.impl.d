lib/apn/ast.ml: List Value
