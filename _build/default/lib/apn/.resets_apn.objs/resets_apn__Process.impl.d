lib/apn/process.ml: Message State Value
