lib/apn/models_ast.ml: Array Ast Interp Models Option System Value
