lib/apn/explorer.mli: Format System
