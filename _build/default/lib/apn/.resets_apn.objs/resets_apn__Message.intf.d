lib/apn/message.mli: Format
