lib/apn/explorer.ml: Format Hashtbl List Printf Queue String System
