lib/apn/models_ast.mli: Ast Models System
