lib/apn/system.mli: Format Message Network Process Resets_util State
