lib/apn/state.ml: Format Hashtbl List String Value
