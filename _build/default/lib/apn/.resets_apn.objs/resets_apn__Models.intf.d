lib/apn/models.mli: Process System
