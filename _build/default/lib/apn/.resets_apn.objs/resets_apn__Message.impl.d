lib/apn/message.ml: Format Int List String
