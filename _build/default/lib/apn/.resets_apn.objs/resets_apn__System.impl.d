lib/apn/system.ml: Array Format Hashtbl List Message Network Printf Prng Process Resets_util State Value
