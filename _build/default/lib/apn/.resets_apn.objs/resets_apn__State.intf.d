lib/apn/state.mli: Format Value
