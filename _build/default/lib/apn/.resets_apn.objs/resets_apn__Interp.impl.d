lib/apn/interp.ml: Array Ast List Message Printf Process State String Value
