lib/apn/network.mli: Message
