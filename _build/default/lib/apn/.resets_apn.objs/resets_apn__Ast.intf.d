lib/apn/ast.mli: Value
