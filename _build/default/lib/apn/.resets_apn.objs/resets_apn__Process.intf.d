lib/apn/process.mli: Message State Value
