lib/apn/interp.mli: Ast Process State Value
