lib/apn/pp.ml: Array Ast Format List Printf String Value
