lib/apn/value.ml: Array Bool Format Int Stdlib String
