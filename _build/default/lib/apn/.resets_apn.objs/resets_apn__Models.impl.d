lib/apn/models.ml: Array Message Option Process State System Value
