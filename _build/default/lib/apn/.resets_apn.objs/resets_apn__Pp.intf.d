lib/apn/pp.mli: Ast Format
