lib/apn/value.mli: Format
