lib/apn/network.ml: Hashtbl List Message
