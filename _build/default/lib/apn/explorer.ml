type outcome =
  | Exhausted of { states : int }
  | Limit_reached of { states : int }
  | Violation of { states : int; trace : string list }

let pp_outcome ppf = function
  | Exhausted { states } -> Format.fprintf ppf "exhausted (%d states, invariant holds)" states
  | Limit_reached { states } ->
    Format.fprintf ppf "limit reached (%d states, invariant holds so far)" states
  | Violation { states; trace } ->
    Format.fprintf ppf "VIOLATION after %d states; trace: %s" states
      (String.concat " ; " trace)

module Table = Hashtbl.Make (struct
  type t = System.snapshot

  let equal = System.snapshot_equal
  let hash = System.snapshot_hash
end)

let explore ?(max_states = 200_000) ~invariant system =
  let initial = System.snapshot system in
  (* parent pointers for trace reconstruction *)
  let visited : (System.snapshot option * string) Table.t = Table.create 4096 in
  Table.replace visited initial (None, "<init>");
  let frontier = Queue.create () in
  Queue.add initial frontier;
  let states = ref 1 in
  let rec trace_of snap acc =
    match Table.find_opt visited snap with
    | None | Some (None, _) -> acc
    | Some (Some parent, label) -> trace_of parent (label :: acc)
  in
  let check snap =
    System.restore system snap;
    invariant system
  in
  let result = ref None in
  if not (check initial) then result := Some (Violation { states = !states; trace = [] });
  while !result = None && not (Queue.is_empty frontier) do
    let snap = Queue.pop frontier in
    System.restore system snap;
    let steps = System.enabled_steps system in
    List.iter
      (fun step ->
        if !result = None then begin
          System.restore system snap;
          System.execute system step;
          let next = System.snapshot system in
          if not (Table.mem visited next) then begin
            Table.replace visited next (Some snap, System.step_label step);
            incr states;
            if not (invariant system) then
              result := Some (Violation { states = !states; trace = trace_of next [] })
            else if !states >= max_states then result := Some (Limit_reached { states = !states })
            else Queue.add next frontier
          end
        end)
      steps
  done;
  System.restore system initial;
  match !result with
  | Some outcome -> outcome
  | None -> Exhausted { states = !states }

let replay system trace =
  let rec step n = function
    | [] -> Ok ()
    | label :: rest -> (
      match
        List.find_opt
          (fun s -> String.equal (System.step_label s) label)
          (System.enabled_steps system)
      with
      | Some s ->
        System.execute system s;
        step (n + 1) rest
      | None ->
        Error (Printf.sprintf "step %d: %S is not enabled here" n label))
  in
  step 1 trace
