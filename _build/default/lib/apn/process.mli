(** APN processes: named variables plus guarded actions.

    Semantics follow the paper's introduction: an action executes only
    when its guard is true; actions (across all processes) execute one
    at a time; an action whose guard is continuously true is eventually
    executed (weak fairness, provided by the schedulers in
    {!System}). *)

type context = {
  self : string;
  send : dst:string -> Message.t -> unit;
}
(** What an action body may do besides updating its own state. *)

type action =
  | Internal of {
      label : string;
      guard : State.t -> bool;
      effect : context -> State.t -> unit;
    }
      (** A boolean-guarded action. *)
  | Receive of {
      label : string;
      from_ : string;
      guard : State.t -> bool;
      effect : context -> State.t -> Message.t -> unit;
    }
      (** A [rcv m from x] action: enabled when the channel from [x]
          has a message and [guard] holds; executing consumes the head
          message. (The paper's receive guards are unconditional; the
          extra guard models a host that is down or waiting on its
          wakeup SAVE, during which arrivals stay buffered in the
          channel.) *)

type t = {
  name : string;
  init : (string * Value.t) list;
  actions : action list;
}

val make : name:string -> init:(string * Value.t) list -> actions:action list -> t

val action_label : action -> string
