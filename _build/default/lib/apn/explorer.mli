(** Bounded exhaustive state-space exploration.

    Breadth-first search over the system's reachable global states
    (process states + channel queues + adversary history), checking an
    invariant at every state. Used to machine-check, on small bounds,
    the paper's Section 5 claims: the original protocol violates
    Discrimination under resets + replay, the SAVE/FETCH protocol does
    not. *)

type outcome =
  | Exhausted of { states : int }
      (** every reachable state within the system's own bounds was
          visited and the invariant held everywhere *)
  | Limit_reached of { states : int }
      (** invariant held on everything visited before [max_states] *)
  | Violation of { states : int; trace : string list }
      (** a reachable state violates the invariant; [trace] is the
          step-label path from the initial state *)

val pp_outcome : Format.formatter -> outcome -> unit

val explore :
  ?max_states:int ->
  invariant:(System.t -> bool) ->
  System.t ->
  outcome
(** [explore ~invariant system] starts from the system's current state
    (which is restored before returning). Default [max_states] is
    200_000. *)

val replay : System.t -> string list -> (unit, string) result
(** [replay system trace] executes a counterexample trace (step labels
    as produced by {!outcome}) from the system's current state, leaving
    the system in the trace's final state for inspection. Returns
    [Error message] if some label has no enabled step at its point in
    the trace. *)
