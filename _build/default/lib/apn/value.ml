type t =
  | Int of int
  | Bool of bool
  | Bool_array of bool array

exception Type_error of string

let int = function
  | Int i -> i
  | Bool _ | Bool_array _ -> raise (Type_error "expected int")

let bool = function
  | Bool b -> b
  | Int _ | Bool_array _ -> raise (Type_error "expected bool")

let bool_array = function
  | Bool_array a -> a
  | Int _ | Bool _ -> raise (Type_error "expected bool array")

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Bool_array x, Bool_array y -> x = y
  | (Int _ | Bool _ | Bool_array _), _ -> false

let compare a b = Stdlib.compare a b

let canonical = function
  | Int i -> Int i
  | Bool b -> Bool b
  | Bool_array a -> Bool_array (Array.copy a)

let pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Bool b -> Format.pp_print_bool ppf b
  | Bool_array a ->
    Format.fprintf ppf "[%s]"
      (String.concat ";" (Array.to_list (Array.map (fun b -> if b then "T" else "F") a)))
