open Ast

(* Shared ghost fragments ------------------------------------------- *)

(* {ghost} track the largest value some variable has carried *)
let track_max ~of_:value ~into =
  If
    [
      (value >: var into, assign into value);
      (not_ (value >: var into), Skip);
    ]

(* {ghost} record a delivery of sequence number [s]; a second delivery
   of the same number latches [dup]. *)
let mark_delivered =
  seq
    [
      If
        [
          (Index ("dlv", var "s"), assign "dup" (Bool_lit true));
          (not_ (Index ("dlv", var "s")), Assign ([ Lindex ("dlv", var "s") ], [ Bool_lit true ]));
        ];
      track_max ~of_:(var "s") ~into:"max_dlv";
    ]

let bump name = assign name (var name +: int 1)

(* ------------------------------------------------------------------ *)
(* Section 2: process p *)

let original_p ?(bounds = Models.default_bounds) () =
  {
    name = "p";
    consts = [ ("s_max", bounds.Models.s_max); ("max_resets", bounds.Models.p_resets) ];
    vars =
      [
        plain_var ~comment:"next to be sent, initially 1" "s" (Value.Int 1);
        ghost_var "resets" (Value.Int 0);
        ghost_var "max_sent" (Value.Int 0);
      ];
    actions =
      [
        Guarded
          {
            label = "send";
            guard = var "s" <=: var "s_max";
            body =
              seq
                [
                  Send { dst = "q"; tag = "msg"; args = [ var "s" ] };
                  track_max ~of_:(var "s") ~into:"max_sent";
                  assign "s" (var "s" +: int 1);
                ];
          };
        Guarded
          {
            label = "reset";
            guard = var "resets" <: var "max_resets";
            body = seq [ assign "s" (int 1); bump "resets" ];
          };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Section 2: process q, with the paper's shift loops verbatim *)

(* The three-case receive of Section 2. [after_deliver] runs whenever
   the message is delivered. *)
let window_cases ~after_deliver =
  If
    [
      (var "s" <=: (var "r" -: var "w"), Skip);
      ( (var "r" -: var "w" <: var "s") &&: (var "s" <=: var "r"),
        seq
          [
            assign "i" (var "s" -: var "r" +: var "w");
            If
              [
                (Index ("wdw", var "i"), (* discard *) Skip);
                ( not_ (Index ("wdw", var "i")),
                  seq
                    [
                      Assign ([ Lindex ("wdw", var "i") ], [ Bool_lit true ]);
                      after_deliver;
                    ] );
              ];
          ] );
      ( var "r" <: var "s",
        seq
          [
            (* r, i, j := s, s - r + 1, 1  (simultaneous: i uses old r) *)
            assign_many
              [
                (Lvar "r", var "s");
                (Lvar "i", var "s" -: var "r" +: int 1);
                (Lvar "j", int 1);
              ];
            Do
              [
                ( var "i" <=: var "w",
                  assign_many
                    [
                      (Lindex ("wdw", var "j"), Index ("wdw", var "i"));
                      (Lvar "i", var "i" +: int 1);
                      (Lvar "j", var "j" +: int 1);
                    ] );
              ];
            Do
              [
                ( var "j" <: var "w",
                  assign_many
                    [
                      (Lindex ("wdw", var "j"), Bool_lit false);
                      (Lvar "j", var "j" +: int 1);
                    ] );
              ];
            (* the new right edge was just received *)
            Assign ([ Lindex ("wdw", var "w") ], [ Bool_lit true ]);
            after_deliver;
          ] );
    ]

let q_base_vars ~w ~(bounds : Models.bounds) =
  [
    plain_var "wdw" (Value.Bool_array (Array.make w true));
    plain_var ~comment:"right edge of window, initially 0" "r" (Value.Int 0);
    plain_var "s" (Value.Int 0);
    plain_var "i" (Value.Int 0);
    plain_var "j" (Value.Int 0);
    ghost_var "resets" (Value.Int 0);
    ghost_var "dlv" (Value.Bool_array (Array.make bounds.Models.s_max false));
    ghost_var "dup" (Value.Bool false);
    ghost_var "max_dlv" (Value.Int 0);
  ]

let original_q ?(bounds = Models.default_bounds) ~w () =
  {
    name = "q";
    consts = [ ("w", w); ("max_resets", bounds.Models.q_resets) ];
    vars = q_base_vars ~w ~bounds;
    actions =
      [
        Receive
          {
            label = "rcv";
            from_ = "p";
            tag = "msg";
            binder = "s";
            guard = Bool_lit true;
            body = window_cases ~after_deliver:mark_delivered;
          };
        Guarded
          {
            label = "reset";
            guard = var "resets" <: var "max_resets";
            body =
              seq
                [
                  assign "r" (int 0);
                  assign "j" (int 1);
                  Do
                    [
                      ( var "j" <=: var "w",
                        assign_many
                          [
                            (Lindex ("wdw", var "j"), Bool_lit true);
                            (Lvar "j", var "j" +: int 1);
                          ] );
                    ];
                  bump "resets";
                ];
          };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Section 4: process p with SAVE and FETCH.

   Persistent memory is [pst]; [pend >= 0] is an in-flight background
   SAVE; [pend_wk] is the blocking wakeup SAVE. See Models for the
   discussion of the timing assumption encoded at the SAVE trigger. *)

let augmented_p ?(bounds = Models.default_bounds) ?leap ~kp () =
  let leap = Option.value ~default:(2 * kp) leap in
  {
    name = "p";
    consts =
      [
        ("Kp", kp);
        ("leap", leap);
        ("s_max", bounds.Models.s_max);
        ("max_resets", bounds.Models.p_resets);
      ];
    vars =
      [
        plain_var ~comment:"next to be sent, initially 1" "s" (Value.Int 1);
        plain_var ~comment:"last stored, initially 1" "lst" (Value.Int 1);
        plain_var ~comment:"initially false" "wait" (Value.Bool false);
        plain_var ~comment:"in-flight SAVE value, -1 if none" "pend" (Value.Int (-1));
        plain_var ~comment:"blocking wakeup SAVE, -1 if none" "pend_wk" (Value.Int (-1));
        plain_var ~comment:"persistent memory" "pst" (Value.Int 1);
        ghost_var "resets" (Value.Int 0);
        ghost_var "max_sent" (Value.Int 0);
        ghost_var "stale_resume" (Value.Bool false);
      ];
    actions =
      [
        Guarded
          {
            label = "send";
            guard = not_ (var "wait") &&: (var "s" <=: var "s_max");
            body =
              seq
                [
                  Send { dst = "q"; tag = "msg"; args = [ var "s" ] };
                  track_max ~of_:(var "s") ~into:"max_sent";
                  assign "s" (var "s" +: int 1);
                  If
                    [
                      ( var "s" >=: (var "Kp" +: var "lst"),
                        seq
                          [
                            (* Kp >= messages per SAVE: the previous
                               SAVE has completed by now *)
                            If
                              [
                                (var "pend" >=: int 0, assign "pst" (var "pend"));
                                (not_ (var "pend" >=: int 0), Skip);
                              ];
                            assign_many
                              [ (Lvar "lst", var "s"); (Lvar "pend", var "s") ];
                          ] );
                      (not_ (var "s" >=: (var "Kp" +: var "lst")), Skip);
                    ];
                ];
          };
        Guarded
          {
            label = "save_done";
            guard = var "pend" >=: int 0;
            body =
              seq [ assign "pst" (var "pend"); assign "pend" (int (-1)) ];
          };
        Guarded
          {
            label = "reset";
            guard = var "resets" <: var "max_resets";
            body =
              seq
                [
                  assign_many
                    [
                      (Lvar "wait", Bool_lit true);
                      (Lvar "pend", int (-1));
                      (Lvar "pend_wk", int (-1));
                    ];
                  bump "resets";
                ];
          };
        Guarded
          {
            label = "wakeup_begin";
            guard = var "wait" &&: (var "pend_wk" <: int 0);
            body = assign "pend_wk" (var "pst" +: var "leap");
          };
        Guarded
          {
            label = "wakeup_done";
            guard = var "wait" &&: (var "pend_wk" >=: int 0);
            body =
              seq
                [
                  assign_many
                    [
                      (Lvar "pst", var "pend_wk");
                      (Lvar "s", var "pend_wk");
                      (Lvar "lst", var "pend_wk");
                    ];
                  If
                    [
                      (var "s" <=: var "max_sent",
                       assign "stale_resume" (Bool_lit true));
                      (not_ (var "s" <=: var "max_sent"), Skip);
                    ];
                  assign_many
                    [ (Lvar "pend_wk", int (-1)); (Lvar "wait", Bool_lit false) ];
                ];
          };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Section 4: process q with SAVE and FETCH *)

let augmented_q ?(bounds = Models.default_bounds) ?leap ~kq ~w () =
  let leap = Option.value ~default:(2 * kq) leap in
  let maybe_save =
    If
      [
        ( var "r" >=: (var "Kq" +: var "lst"),
          seq
            [
              If
                [
                  (var "pend" >=: int 0, assign "pst" (var "pend"));
                  (not_ (var "pend" >=: int 0), Skip);
                ];
              assign_many [ (Lvar "lst", var "r"); (Lvar "pend", var "r") ];
            ] );
        (not_ (var "r" >=: (var "Kq" +: var "lst")), Skip);
      ]
  in
  {
    name = "q";
    consts =
      [
        ("w", w);
        ("Kq", kq);
        ("leap", leap);
        ("max_resets", bounds.Models.q_resets);
      ];
    vars =
      q_base_vars ~w ~bounds
      @ [
          plain_var ~comment:"last stored, initially 0" "lst" (Value.Int 0);
          plain_var ~comment:"initially false" "wait" (Value.Bool false);
          plain_var ~comment:"in-flight SAVE value, -1 if none" "pend" (Value.Int (-1));
          plain_var ~comment:"blocking wakeup SAVE, -1 if none" "pend_wk"
            (Value.Int (-1));
          plain_var ~comment:"persistent memory" "pst" (Value.Int 0);
          ghost_var "stale_edge" (Value.Bool false);
        ];
    actions =
      [
        Receive
          {
            label = "rcv";
            from_ = "p";
            tag = "msg";
            binder = "s";
            (* buffered while waiting: arrivals stay in the channel *)
            guard = not_ (var "wait");
            body =
              seq [ window_cases ~after_deliver:mark_delivered; maybe_save ];
          };
        Guarded
          {
            label = "save_done";
            guard = var "pend" >=: int 0;
            body = seq [ assign "pst" (var "pend"); assign "pend" (int (-1)) ];
          };
        Guarded
          {
            label = "reset";
            guard = var "resets" <: var "max_resets";
            body =
              seq
                [
                  assign_many
                    [
                      (Lvar "wait", Bool_lit true);
                      (Lvar "pend", int (-1));
                      (Lvar "pend_wk", int (-1));
                    ];
                  bump "resets";
                ];
          };
        Guarded
          {
            label = "wakeup_begin";
            guard = var "wait" &&: (var "pend_wk" <: int 0);
            body = assign "pend_wk" (var "pst" +: var "leap");
          };
        Guarded
          {
            label = "wakeup_done";
            guard = var "wait" &&: (var "pend_wk" >=: int 0);
            body =
              seq
                [
                  assign_many
                    [
                      (Lvar "pst", var "pend_wk");
                      (Lvar "r", var "pend_wk");
                      (Lvar "lst", var "pend_wk");
                    ];
                  assign "i" (int 1);
                  Do
                    [
                      ( var "i" <=: var "w",
                        assign_many
                          [
                            (Lindex ("wdw", var "i"), Bool_lit true);
                            (Lvar "i", var "i" +: int 1);
                          ] );
                    ];
                  If
                    [
                      (var "r" <: var "max_dlv", assign "stale_edge" (Bool_lit true));
                      (not_ (var "r" <: var "max_dlv"), Skip);
                    ];
                  assign_many
                    [ (Lvar "pend_wk", int (-1)); (Lvar "wait", Bool_lit false) ];
                ];
          };
      ];
  }

(* ------------------------------------------------------------------ *)

let original_system ?(bounds = Models.default_bounds) ?capacity ?adversary ?lossy ~w () =
  System.create ?capacity ?adversary ?lossy
    [
      Interp.compile (original_p ~bounds ());
      Interp.compile (original_q ~bounds ~w ());
    ]

let augmented_system ?(bounds = Models.default_bounds) ?capacity ?adversary ?lossy
    ?leap_p ?leap_q ~kp ~kq ~w () =
  System.create ?capacity ?adversary ?lossy
    [
      Interp.compile (augmented_p ~bounds ?leap:leap_p ~kp ());
      Interp.compile (augmented_q ~bounds ?leap:leap_q ~kq ~w ());
    ]
