type t = (string, Value.t) Hashtbl.t

let create bindings =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (name, v) ->
      if Hashtbl.mem t name then invalid_arg ("State.create: duplicate variable " ^ name);
      Hashtbl.replace t name (Value.canonical v))
    bindings;
  t

let get t name =
  match Hashtbl.find_opt t name with
  | Some v -> v
  | None -> raise Not_found

let set t name v =
  if not (Hashtbl.mem t name) then raise Not_found;
  Hashtbl.replace t name v

let get_int t name = Value.int (get t name)
let set_int t name i = set t name (Value.Int i)
let get_bool t name = Value.bool (get t name)
let set_bool t name b = set t name (Value.Bool b)
let get_bool_array t name = Value.bool_array (get t name)

let snapshot t =
  Hashtbl.fold (fun name v acc -> (name, Value.canonical v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let restore t bindings =
  List.iter (fun (name, v) -> set t name (Value.canonical v)) bindings

let copy t = create (snapshot t)

let pp ppf t =
  Format.fprintf ppf "{";
  List.iter (fun (name, v) -> Format.fprintf ppf "%s=%a; " name Value.pp v) (snapshot t);
  Format.fprintf ppf "}"
