(** APN channel messages: a tag plus integer arguments; the paper's
    protocols only ever send [msg(s)]. *)

type t = {
  tag : string;
  args : int list;
}

val msg : int -> t
(** [msg s] is the paper's [msg(s)]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
