(** Interpreter for {!Ast} processes.

    Evaluation raises [Eval_error] on type errors, unknown names or
    out-of-range array indexing (the paper's [wdw\[1..w\]] arrays are
    1-based, as is this interpreter's indexing). *)

exception Eval_error of string

val eval :
  consts:(string * int) list -> State.t -> Ast.expr -> Value.t

val eval_int : consts:(string * int) list -> State.t -> Ast.expr -> int
val eval_bool : consts:(string * int) list -> State.t -> Ast.expr -> bool

val exec :
  consts:(string * int) list ->
  ctx:Process.context ->
  State.t ->
  Ast.stmt ->
  unit
(** Execute a statement. Simultaneous assignments evaluate every
    right-hand side (and every index on the left) before any store, as
    the notation requires. [If] with no true guard blocks — the paper
    never writes such a selection, so this interpreter treats it as an
    error. *)

val compile : Ast.process -> Process.t
(** Turn a declarative process into an executable one. The resulting
    process behaves identically to a hand-coded {!Process.t}; the test
    suite checks this by exploring both and comparing reachable state
    spaces. *)
