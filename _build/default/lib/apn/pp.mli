(** Renderer: {!Ast} processes back to the paper's concrete notation.

    The output matches the layout of the paper's figures:

    {v
process p
const Kp, Tp : integer
var   s : integer {next to be sent, initially 1}
begin
      true ->
        send msg(s) to q;
        s := s + 1
[]    (process p is reset) ->
        ...
end
    v}

    Ghost variables and their updates are rendered inside [{ghost: …}]
    comments so the protocol text stays comparable with the paper. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_process : Format.formatter -> Ast.process -> unit

val process_to_string : Ast.process -> string
