type channel = {
  mutable queue : Message.t list; (* head = next to deliver *)
  mutable history : Message.t list; (* newest first, distinct *)
}

type t = {
  cap : int;
  record_history : bool;
  channels : (string * string, channel) Hashtbl.t;
}

let create ?(capacity = 1024) ?(record_history = false) () =
  if capacity <= 0 then invalid_arg "Network.create: capacity must be positive";
  { cap = capacity; record_history; channels = Hashtbl.create 8 }

let capacity t = t.cap

let channel t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some c -> c
  | None ->
    let c = { queue = []; history = [] } in
    Hashtbl.replace t.channels (src, dst) c;
    c

let can_send t ~src ~dst = List.length (channel t ~src ~dst).queue < t.cap

let record c msg =
  if not (List.exists (Message.equal msg) c.history) then c.history <- msg :: c.history

let send t ~src ~dst msg =
  let c = channel t ~src ~dst in
  if List.length c.queue >= t.cap then invalid_arg "Network.send: channel full";
  c.queue <- c.queue @ [ msg ];
  if t.record_history then record c msg

let peek t ~src ~dst =
  match (channel t ~src ~dst).queue with
  | [] -> None
  | m :: _ -> Some m

let receive t ~src ~dst =
  let c = channel t ~src ~dst in
  match c.queue with
  | [] -> None
  | m :: rest ->
    c.queue <- rest;
    Some m

let queue_length t ~src ~dst = List.length (channel t ~src ~dst).queue

let drop_head = receive

let history t ~src ~dst = List.rev (channel t ~src ~dst).history

let inject t ~src ~dst msg =
  let c = channel t ~src ~dst in
  if List.length c.queue >= t.cap then false
  else begin
    c.queue <- c.queue @ [ msg ];
    true
  end

let pairs t =
  Hashtbl.fold (fun pair _c acc -> pair :: acc) t.channels []
  |> List.sort compare

(* Snapshots are canonical: channels that exist in the table but are
   empty are omitted, so a state reached before and after a channel's
   first use compares equal. *)
let snapshot t =
  Hashtbl.fold
    (fun pair c acc -> if c.queue = [] then acc else (pair, c.queue) :: acc)
    t.channels []
  |> List.sort compare

let restore t snap =
  Hashtbl.iter (fun _pair c -> c.queue <- []) t.channels;
  List.iter
    (fun ((src, dst), queue) ->
      let c = channel t ~src ~dst in
      c.queue <- queue)
    snap

let snapshot_history t =
  Hashtbl.fold
    (fun pair c acc -> if c.history = [] then acc else (pair, c.history) :: acc)
    t.channels []
  |> List.sort compare

let restore_history t snap =
  Hashtbl.iter (fun _pair c -> c.history <- []) t.channels;
  List.iter
    (fun ((src, dst), history) ->
      let c = channel t ~src ~dst in
      c.history <- history)
    snap
