type t = {
  tag : string;
  args : int list;
}

let msg s = { tag = "msg"; args = [ s ] }

let equal a b = String.equal a.tag b.tag && List.equal Int.equal a.args b.args

let compare a b =
  match String.compare a.tag b.tag with
  | 0 -> List.compare Int.compare a.args b.args
  | c -> c

let pp ppf t =
  Format.fprintf ppf "%s(%s)" t.tag (String.concat "," (List.map string_of_int t.args))
