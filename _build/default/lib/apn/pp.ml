open Format

(* Precedence levels, loosest first: or < and < not < comparison <
   additive < multiplicative < atoms. *)
let prec = function
  | Ast.Or _ -> 1
  | Ast.And _ -> 2
  | Ast.Not _ -> 3
  | Ast.Le _ | Ast.Lt _ | Ast.Ge _ | Ast.Gt _ | Ast.Eq _ -> 4
  | Ast.Add _ | Ast.Sub _ -> 5
  | Ast.Mul _ -> 6
  | Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Var _ | Ast.Index _ -> 7

let rec pp_expr_prec level ppf e =
  let p = prec e in
  let wrap body =
    if p < level then fprintf ppf "(%t)" body else body ppf
  in
  match e with
  | Ast.Int_lit i -> pp_print_int ppf i
  | Ast.Bool_lit true -> pp_print_string ppf "true"
  | Ast.Bool_lit false -> pp_print_string ppf "false"
  | Ast.Var name -> pp_print_string ppf name
  | Ast.Index (name, idx) -> fprintf ppf "%s[%a]" name (pp_expr_prec 0) idx
  | Ast.Add (a, b) -> wrap (fun ppf -> binop ppf p "+" a b)
  | Ast.Sub (a, b) -> wrap (fun ppf -> binop_left ppf p "-" a b)
  | Ast.Mul (a, b) -> wrap (fun ppf -> binop ppf p "*" a b)
  | Ast.Le (a, b) -> wrap (fun ppf -> binop ppf p "<=" a b)
  | Ast.Lt (a, b) -> wrap (fun ppf -> binop ppf p "<" a b)
  | Ast.Ge (a, b) -> wrap (fun ppf -> binop ppf p ">=" a b)
  | Ast.Gt (a, b) -> wrap (fun ppf -> binop ppf p ">" a b)
  | Ast.Eq (a, b) -> wrap (fun ppf -> binop ppf p "=" a b)
  | Ast.And (a, b) -> wrap (fun ppf -> binop ppf p "and" a b)
  | Ast.Or (a, b) -> wrap (fun ppf -> binop ppf p "or" a b)
  | Ast.Not a -> wrap (fun ppf -> fprintf ppf "~%a" (pp_expr_prec 7) a)

and binop ppf p op a b =
  fprintf ppf "%a %s %a" (pp_expr_prec p) a op (pp_expr_prec (p + 1)) b

(* left-associative with a non-associative right side (subtraction) *)
and binop_left ppf p op a b =
  fprintf ppf "%a %s %a" (pp_expr_prec p) a op (pp_expr_prec (p + 1)) b

let pp_expr ppf e = pp_expr_prec 0 ppf e

let pp_lhs ppf = function
  | Ast.Lvar name -> pp_print_string ppf name
  | Ast.Lindex (name, idx) -> fprintf ppf "%s[%a]" name pp_expr idx

let rec pp_stmt ppf (s : Ast.stmt) =
  match s with
  | Ast.Skip -> pp_print_string ppf "skip"
  | Ast.Assign (lhss, rhss) ->
    fprintf ppf "@[<hv 2>%a :=@ %a@]"
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_lhs)
      lhss
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
      rhss
  | Ast.Send { dst; tag; args } ->
    fprintf ppf "send %s(%a) to %s" tag
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ", ") pp_expr)
      args dst
  | Ast.If branches ->
    fprintf ppf "@[<v 0>if @[<v 0>%a@]@ fi@]"
      (pp_print_list
         ~pp_sep:(fun ppf () -> fprintf ppf "@ [] ")
         (fun ppf (g, b) -> fprintf ppf "@[<hv 2>%a ->@ %a@]" pp_expr g pp_stmt b))
      branches
  | Ast.Do branches ->
    fprintf ppf "@[<v 0>do @[<v 0>%a@]@ od@]"
      (pp_print_list
         ~pp_sep:(fun ppf () -> fprintf ppf "@ [] ")
         (fun ppf (g, b) -> fprintf ppf "@[<hv 2>%a ->@ %a@]" pp_expr g pp_stmt b))
      branches
  | Ast.Seq stmts ->
    fprintf ppf "@[<v 0>%a@]"
      (pp_print_list ~pp_sep:(fun ppf () -> fprintf ppf ";@ ") pp_stmt)
      stmts

let value_text = function
  | Value.Int i -> string_of_int i
  | Value.Bool b -> if b then "true" else "false"
  | Value.Bool_array a -> Printf.sprintf "array [1..%d] of boolean" (Array.length a)

let type_text = function
  | Value.Int _ -> "integer"
  | Value.Bool _ -> "boolean"
  | Value.Bool_array a -> Printf.sprintf "array [1..%d] of boolean" (Array.length a)

let pp_var ppf (d : Ast.var_decl) =
  let annotation =
    match d.Ast.comment with
    | Some c -> Printf.sprintf " {%s}" c
    | None -> (
      match d.Ast.init with
      | Value.Bool_array _ -> ""
      | v -> Printf.sprintf " {initially %s}" (value_text v))
  in
  if d.Ast.ghost then
    fprintf ppf "%s : %s%s {ghost}" d.Ast.var_name (type_text d.Ast.init) annotation
  else fprintf ppf "%s : %s%s" d.Ast.var_name (type_text d.Ast.init) annotation

let pp_action ppf (a : Ast.action) =
  match a with
  | Ast.Guarded { label; guard; body } ->
    fprintf ppf "@[<v 4>%a ->  {%s}@ %a@]" pp_expr guard label pp_stmt body
  | Ast.Receive { label; from_; tag; binder; guard; body } ->
    let guard_text =
      match guard with
      | Ast.Bool_lit true -> ""
      | g -> asprintf " provided %a" pp_expr g
    in
    fprintf ppf "@[<v 4>rcv %s(%s) from %s%s ->  {%s}@ %a@]" tag binder from_
      guard_text label pp_stmt body

let pp_process ppf (p : Ast.process) =
  fprintf ppf "@[<v 0>process %s@ " p.Ast.name;
  (match p.Ast.consts with
  | [] -> ()
  | consts ->
    fprintf ppf "const %s : integer@ "
      (String.concat ", " (List.map fst consts)));
  (match p.Ast.vars with
  | [] -> ()
  | first :: rest ->
    fprintf ppf "var   %a@ " pp_var first;
    List.iter (fun d -> fprintf ppf "      %a@ " pp_var d) rest);
  fprintf ppf "begin@ ";
  (match p.Ast.actions with
  | [] -> ()
  | first :: rest ->
    fprintf ppf "      %a@ " pp_action first;
    List.iter (fun a -> fprintf ppf "[]    %a@ " pp_action a) rest);
  fprintf ppf "end@]"

let process_to_string p = asprintf "%a" pp_process p
