open Resets_util

type step =
  | Proc_action of { proc : string; index : int; label : string }
  | Replay of { src : string; dst : string; msg : Message.t }
  | Drop of { src : string; dst : string }

let step_label = function
  | Proc_action { proc; label; _ } -> Printf.sprintf "%s.%s" proc label
  | Replay { src; dst; msg; _ } ->
    Format.asprintf "replay(%s->%s, %a)" src dst Message.pp msg
  | Drop { src; dst } -> Printf.sprintf "drop(%s->%s)" src dst

let pp_step ppf s = Format.pp_print_string ppf (step_label s)

type t = {
  net : Network.t;
  order : string list;
  procs : (string, Process.t * State.t) Hashtbl.t;
  adversary : bool;
  lossy : bool;
}

let create ?(capacity = 1024) ?(adversary = false) ?(lossy = false) processes =
  let net = Network.create ~capacity ~record_history:adversary () in
  let procs = Hashtbl.create 4 in
  let order =
    List.map
      (fun (p : Process.t) ->
        if Hashtbl.mem procs p.name then
          invalid_arg ("System.create: duplicate process " ^ p.name);
        Hashtbl.replace procs p.name (p, State.create p.init);
        p.name)
      processes
  in
  { net; order; procs; adversary; lossy }

let state_of t name =
  match Hashtbl.find_opt t.procs name with
  | Some (_p, st) -> st
  | None -> raise Not_found

let network t = t.net

let context t name : Process.context =
  {
    self = name;
    send =
      (fun ~dst msg ->
        (* A send into a full channel loses the message: the paper's
           channels may lose messages, and this keeps exploration
           bounded without disabling the sender's action. *)
        if Network.can_send t.net ~src:name ~dst then
          Network.send t.net ~src:name ~dst msg);
  }

let action_enabled t name st = function
  | Process.Internal { guard; _ } -> guard st
  | Process.Receive { from_; guard; _ } ->
    guard st && Network.peek t.net ~src:from_ ~dst:name <> None

let enabled_steps t =
  let proc_steps =
    List.concat_map
      (fun name ->
        let p, st = Hashtbl.find t.procs name in
        List.concat
          (List.mapi
             (fun index action ->
               if action_enabled t name st action then
                 [ Proc_action { proc = name; index; label = Process.action_label action } ]
               else [])
             p.actions))
      t.order
  in
  let channel_steps =
    List.concat_map
      (fun (src, dst) ->
        let replays =
          if t.adversary then
            List.map (fun msg -> Replay { src; dst; msg }) (Network.history t.net ~src ~dst)
          else []
        in
        let drops =
          if t.lossy && Network.queue_length t.net ~src ~dst > 0 then [ Drop { src; dst } ]
          else []
        in
        replays @ drops)
      (Network.pairs t.net)
  in
  proc_steps @ channel_steps

let execute t step =
  match step with
  | Proc_action { proc; index; _ } -> begin
    let p, st = Hashtbl.find t.procs proc in
    let action = List.nth p.actions index in
    if not (action_enabled t proc st action) then
      invalid_arg ("System.execute: disabled step " ^ step_label step);
    match action with
    | Process.Internal { effect; _ } -> effect (context t proc) st
    | Process.Receive { from_; effect; _ } -> (
      match Network.receive t.net ~src:from_ ~dst:proc with
      | Some msg -> effect (context t proc) st msg
      | None -> assert false)
  end
  | Replay { src; dst; msg } ->
    if not t.adversary then invalid_arg "System.execute: adversary disabled";
    (* Injection into a full channel is simply ineffective. *)
    ignore (Network.inject t.net ~src ~dst msg)
  | Drop { src; dst } ->
    if not t.lossy then invalid_arg "System.execute: lossy channels disabled";
    ignore (Network.drop_head t.net ~src ~dst)

let step_random prng t =
  match enabled_steps t with
  | [] -> None
  | steps ->
    let arr = Array.of_list steps in
    let step = Prng.choose prng arr in
    execute t step;
    Some step

let run_random ?(stop_when = fun _ -> false) prng ~steps t =
  let rec loop executed =
    if executed >= steps || stop_when t then executed
    else
      match step_random prng t with
      | None -> executed
      | Some _ -> loop (executed + 1)
  in
  loop 0

type snapshot = {
  proc_states : (string * (string * Value.t) list) list;
  queues : ((string * string) * Message.t list) list;
  histories : ((string * string) * Message.t list) list;
}

let snapshot t =
  {
    proc_states =
      List.map (fun name -> (name, State.snapshot (state_of t name))) t.order;
    queues = Network.snapshot t.net;
    histories = Network.snapshot_history t.net;
  }

let restore t snap =
  List.iter (fun (name, bindings) -> State.restore (state_of t name) bindings)
    snap.proc_states;
  Network.restore t.net snap.queues;
  Network.restore_history t.net snap.histories

let snapshot_equal (a : snapshot) (b : snapshot) = a = b

let snapshot_hash (s : snapshot) = Hashtbl.hash s
