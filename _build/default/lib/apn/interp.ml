exception Eval_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Eval_error m)) fmt

let lookup ~consts st name =
  match List.assoc_opt name consts with
  | Some c -> Value.Int c
  | None -> (
    match State.get st name with
    | v -> v
    | exception Not_found -> err "unknown name %s" name)

let rec eval ~consts st (e : Ast.expr) : Value.t =
  let int_of e =
    match eval ~consts st e with
    | Value.Int i -> i
    | Value.Bool _ | Value.Bool_array _ -> err "expected an integer"
  in
  let bool_of e =
    match eval ~consts st e with
    | Value.Bool b -> b
    | Value.Int _ | Value.Bool_array _ -> err "expected a boolean"
  in
  match e with
  | Ast.Int_lit i -> Value.Int i
  | Ast.Bool_lit b -> Value.Bool b
  | Ast.Var name -> lookup ~consts st name
  | Ast.Index (name, idx) -> begin
    match lookup ~consts st name with
    | Value.Bool_array a ->
      let i = int_of idx in
      if i < 1 || i > Array.length a then err "%s[%d] out of range" name i;
      Value.Bool a.(i - 1)
    | Value.Int _ | Value.Bool _ -> err "%s is not an array" name
  end
  | Ast.Add (a, b) -> Value.Int (int_of a + int_of b)
  | Ast.Sub (a, b) -> Value.Int (int_of a - int_of b)
  | Ast.Mul (a, b) -> Value.Int (int_of a * int_of b)
  | Ast.Le (a, b) -> Value.Bool (int_of a <= int_of b)
  | Ast.Lt (a, b) -> Value.Bool (int_of a < int_of b)
  | Ast.Ge (a, b) -> Value.Bool (int_of a >= int_of b)
  | Ast.Gt (a, b) -> Value.Bool (int_of a > int_of b)
  | Ast.Eq (a, b) -> Value.Bool (Value.equal (eval ~consts st a) (eval ~consts st b))
  | Ast.And (a, b) -> Value.Bool (bool_of a && bool_of b)
  | Ast.Or (a, b) -> Value.Bool (bool_of a || bool_of b)
  | Ast.Not a -> Value.Bool (not (bool_of a))

let eval_int ~consts st e =
  match eval ~consts st e with
  | Value.Int i -> i
  | Value.Bool _ | Value.Bool_array _ -> err "expected an integer"

let eval_bool ~consts st e =
  match eval ~consts st e with
  | Value.Bool b -> b
  | Value.Int _ | Value.Bool_array _ -> err "expected a boolean"

(* A resolved assignment target: where to store, computed before any
   store happens (simultaneous-assignment semantics). *)
type slot =
  | Slot_var of string
  | Slot_index of string * int

let resolve_lhs ~consts st (l : Ast.lhs) =
  match l with
  | Ast.Lvar name -> Slot_var name
  | Ast.Lindex (name, idx) -> Slot_index (name, eval_int ~consts st idx)

let store st slot value =
  match slot with
  | Slot_var name -> State.set st name value
  | Slot_index (name, i) -> (
    match State.get st name with
    | Value.Bool_array a ->
      if i < 1 || i > Array.length a then err "%s[%d] out of range" name i;
      (match value with
      | Value.Bool b -> a.(i - 1) <- b
      | Value.Int _ | Value.Bool_array _ -> err "%s[%d] := non-boolean" name i)
    | Value.Int _ | Value.Bool _ -> err "%s is not an array" name
    | exception Not_found -> err "unknown name %s" name)

let rec exec ~consts ~(ctx : Process.context) st (s : Ast.stmt) =
  match s with
  | Ast.Skip -> ()
  | Ast.Assign (lhss, rhss) ->
    if List.length lhss <> List.length rhss then
      err "assignment arity mismatch (%d targets, %d values)" (List.length lhss)
        (List.length rhss);
    let slots = List.map (resolve_lhs ~consts st) lhss in
    let values = List.map (eval ~consts st) rhss in
    List.iter2 (store st) slots values
  | Ast.Send { dst; tag; args } ->
    let args = List.map (eval_int ~consts st) args in
    ctx.Process.send ~dst { Message.tag; args }
  | Ast.If branches ->
    let rec pick = function
      | [] -> err "if-fi with no true guard"
      | (guard, body) :: rest ->
        if eval_bool ~consts st guard then exec ~consts ~ctx st body else pick rest
    in
    pick branches
  | Ast.Do branches ->
    let rec loop () =
      match
        List.find_opt (fun (guard, _) -> eval_bool ~consts st guard) branches
      with
      | Some (_, body) ->
        exec ~consts ~ctx st body;
        loop ()
      | None -> ()
    in
    loop ()
  | Ast.Seq stmts -> List.iter (exec ~consts ~ctx st) stmts

let compile (p : Ast.process) : Process.t =
  let consts = p.Ast.consts in
  let init =
    List.map (fun d -> (d.Ast.var_name, d.Ast.init)) p.Ast.vars
  in
  let compile_action = function
    | Ast.Guarded { label; guard; body } ->
      Process.Internal
        {
          label;
          guard = (fun st -> eval_bool ~consts st guard);
          effect = (fun ctx st -> exec ~consts ~ctx st body);
        }
    | Ast.Receive { label; from_; tag; binder; guard; body } ->
      Process.Receive
        {
          label;
          from_;
          guard = (fun st -> eval_bool ~consts st guard);
          effect =
            (fun ctx st msg ->
              if not (String.equal msg.Message.tag tag) then
                err "process %s expected %s(...), got %s" p.Ast.name tag
                  msg.Message.tag;
              match msg.Message.args with
              | [ arg ] ->
                State.set_int st binder arg;
                exec ~consts ~ctx st body
              | [] | _ :: _ -> err "process %s: malformed %s message" p.Ast.name tag);
        }
  in
  Process.make ~name:p.Ast.name ~init ~actions:(List.map compile_action p.Ast.actions)
