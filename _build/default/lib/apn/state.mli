(** A process's variable store. *)

type t

val create : (string * Value.t) list -> t
(** @raise Invalid_argument on duplicate names. *)

val get : t -> string -> Value.t
(** @raise Not_found when the variable does not exist. *)

val set : t -> string -> Value.t -> unit
(** @raise Not_found when the variable was never declared (APN
    variables are declared up front). *)

val get_int : t -> string -> int
val set_int : t -> string -> int -> unit
val get_bool : t -> string -> bool
val set_bool : t -> string -> bool -> unit
val get_bool_array : t -> string -> bool array
(** The live array — mutating it mutates the state. *)

val snapshot : t -> (string * Value.t) list
(** Sorted by name, deep-copied: usable as a hash/compare key. *)

val restore : t -> (string * Value.t) list -> unit
(** Overwrite from a snapshot taken on a state with the same
    variables. *)

val copy : t -> t

val pp : Format.formatter -> t -> unit
