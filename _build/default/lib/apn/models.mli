(** The paper's processes, transliterated into the APN interpreter.

    Two protocol versions:

    - {!original_p} / {!original_q}: Section 2's anti-replay window
      protocol, whose sequence state is volatile — a reset action sets
      [s := 1] (at p) or [r := 0, wdw := all true] (at q), reproducing
      the Section 3 failures;
    - {!augmented_p} / {!augmented_q}: Section 4's protocol with SAVE
      and FETCH. Background SAVE is modeled as a pending write that a
      separate [save_done] action makes durable — so a reset can strike
      {e between} [save.begin] and [save.done], the exact race Figures
      1 and 2 analyse. The blocking wakeup SAVE is split into
      [wakeup_begin]/[wakeup_done] so a second reset can strike during
      it (Section 4's second consideration).

    Ghost (history) variables instrument the paper's correctness
    conditions without affecting behaviour:

    - at q: [dlv] marks delivered sequence numbers and [dup] latches a
      second delivery of the same number — {e Discrimination} is
      [dup = false];
    - at p: [max_sent] tracks the largest sequence number ever sent and
      [stale_resume] latches a wakeup that resumed at or below it —
      Section 5's sender-freshness claim is [stale_resume = false];
    - at q: [stale_edge] latches a wakeup whose recovered right edge
      lies below the largest delivered number — Section 5's receiver
      claim is [stale_edge = false].

    All processes carry bounds so exploration is finite: [s_max] caps
    how many messages p may send, [max_resets] caps reset actions. *)

type bounds = {
  s_max : int;  (** largest sequence number p may send *)
  p_resets : int;  (** reset budget for p *)
  q_resets : int;  (** reset budget for q *)
}

val default_bounds : bounds

val original_p : ?bounds:bounds -> unit -> Process.t
val original_q : ?bounds:bounds -> w:int -> unit -> Process.t

val augmented_p : ?bounds:bounds -> ?leap:int -> kp:int -> unit -> Process.t
(** [leap] defaults to the paper's [2 * kp]; smaller values exist so
    the explorer can demonstrate they are unsound (a reset during the
    in-flight SAVE then resumes on used numbers). *)

val augmented_q :
  ?bounds:bounds -> ?robust:bool -> ?leap:int -> kq:int -> w:int -> unit -> Process.t
(** With [robust:false] (the default), the receiver is exactly the
    paper's process q. Exploring it reproduces the paper's receiver
    theorem {e under the paper's implicit assumption} that the right
    edge advances by small steps between SAVEs — and also exhibits a
    corner the paper's Figure 2 analysis misses: if [r] jumps by more
    than [Kq] in a single receive (because the sender leapt after its
    own reset, because earlier messages were lost, or because a
    replayed/reordered high number arrived first) and a reset strikes
    while SAVE(r) is still in flight, the fetched value can lag the
    last used edge by more than [2 Kq], and a replayed message is then
    accepted. See the model-checking tests and EXPERIMENTS.md (E11).

    With [robust:true], the receiver additionally refuses to let [r]
    outrun durable state: accepting a message that would make
    [r > pst + 2 Kq] completes the SAVE synchronously first (modeling a
    blocking write). The Section 5 claims then hold for every schedule
    we can explore, including combined p/q resets, loss and replay. *)

(** {1 Invariants (Section 5, as state predicates)} *)

val discrimination_holds : System.t -> bool
(** q has never delivered the same sequence number twice. *)

val sender_freshness_holds : System.t -> bool
(** p has never resumed, after a wakeup, at a sequence number already
    used. Vacuously true for systems without an augmented p. *)

val receiver_freshness_holds : System.t -> bool
(** q has never resumed with a right edge below a delivered number. *)

val all_section5_invariants : System.t -> bool

(** {1 Ready-made systems} *)

val original_system :
  ?bounds:bounds -> ?capacity:int -> ?adversary:bool -> ?lossy:bool -> w:int -> unit -> System.t

val augmented_system :
  ?bounds:bounds ->
  ?capacity:int ->
  ?adversary:bool ->
  ?lossy:bool ->
  ?robust:bool ->
  ?leap_p:int ->
  ?leap_q:int ->
  kp:int ->
  kq:int ->
  w:int ->
  unit ->
  System.t
