(** Values of the Abstract Protocol Notation interpreter.

    The paper specifies its protocols in Gouda's Abstract Protocol
    Notation (APN): processes with constants, variables and guarded
    actions. Variables range over integers, booleans and boolean
    arrays (the anti-replay window [wdw] is [array \[1..w\] of
    boolean]). *)

type t =
  | Int of int
  | Bool of bool
  | Bool_array of bool array

exception Type_error of string

val int : t -> int
(** @raise Type_error if not an [Int]. *)

val bool : t -> bool
val bool_array : t -> bool array

val equal : t -> t -> bool
val compare : t -> t -> int

val canonical : t -> t
(** A deep copy safe to store in snapshots (arrays are copied). *)

val pp : Format.formatter -> t -> unit
