type context = {
  self : string;
  send : dst:string -> Message.t -> unit;
}

type action =
  | Internal of {
      label : string;
      guard : State.t -> bool;
      effect : context -> State.t -> unit;
    }
  | Receive of {
      label : string;
      from_ : string;
      guard : State.t -> bool;
      effect : context -> State.t -> Message.t -> unit;
    }

type t = {
  name : string;
  init : (string * Value.t) list;
  actions : action list;
}

let make ~name ~init ~actions = { name; init; actions }

let action_label = function
  | Internal { label; _ } -> label
  | Receive { label; _ } -> label
