(** Channels between APN processes.

    Each ordered process pair has one FIFO channel. The channel records
    the history of everything ever sent through it when created with
    [record_history:true]; the replay adversary draws from that
    history, matching the paper's adversary who can "insert … a copy of
    any message t that was sent earlier". A capacity bound keeps
    exhaustive exploration finite (sends into a full channel are
    disabled, not lost). *)

type t

val create : ?capacity:int -> ?record_history:bool -> unit -> t
(** Default capacity 1024 (effectively unbounded for random runs; pass
    a small bound for exploration). *)

val capacity : t -> int

val send : t -> src:string -> dst:string -> Message.t -> unit
(** @raise Invalid_argument when the channel is full (callers guard
    sends with {!can_send}). *)

val can_send : t -> src:string -> dst:string -> bool

val peek : t -> src:string -> dst:string -> Message.t option

val receive : t -> src:string -> dst:string -> Message.t option

val queue_length : t -> src:string -> dst:string -> int

val drop_head : t -> src:string -> dst:string -> Message.t option
(** Channel loss: remove the head message without delivering it. *)

val history : t -> src:string -> dst:string -> Message.t list
(** Distinct messages ever sent (oldest first); empty when history
    recording is off. *)

val inject : t -> src:string -> dst:string -> Message.t -> bool
(** Adversarial insertion (not recorded in history); [false] when the
    channel is full. *)

val pairs : t -> (string * string) list
(** Ordered pairs that have ever been used. *)

val snapshot : t -> ((string * string) * Message.t list) list
(** Sorted queue contents (history excluded — it only grows and is
    derived from sends, so queue contents identify the channel state
    for exploration purposes only when combined with bounded send
    counts; the explorer bounds sends via the process states). *)

val restore : t -> ((string * string) * Message.t list) list -> unit

val snapshot_history : t -> ((string * string) * Message.t list) list

val restore_history : t -> ((string * string) * Message.t list) list -> unit
