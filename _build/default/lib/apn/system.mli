(** A closed APN system: processes, channels, and (optionally) the
    paper's adversary and lossy channels, executable step by step.

    Step semantics: one enabled action executes at a time (the paper's
    interleaving rule). The random scheduler picks uniformly among
    enabled steps, which is weakly fair with probability 1; the
    explorer enumerates all of them. A send into a full channel loses
    the message (channels may lose messages in the paper's model, and
    this keeps exploration bounded). *)

type t

type step =
  | Proc_action of { proc : string; index : int; label : string }
  | Replay of { src : string; dst : string; msg : Message.t }
      (** adversary re-inserts a previously sent message *)
  | Drop of { src : string; dst : string }
      (** channel loses its head message *)

val pp_step : Format.formatter -> step -> unit
val step_label : step -> string

val create :
  ?capacity:int ->
  ?adversary:bool ->
  ?lossy:bool ->
  Process.t list ->
  t
(** [adversary] enables {!Replay} steps (and turns on channel history
    recording); [lossy] enables {!Drop} steps. *)

val state_of : t -> string -> State.t
(** @raise Not_found for an unknown process. *)

val network : t -> Network.t

val enabled_steps : t -> step list
(** Deterministic order (process declaration order, then action
    order, then channel order). *)

val execute : t -> step -> unit
(** @raise Invalid_argument when the step is not currently enabled. *)

val step_random : Resets_util.Prng.t -> t -> step option
(** Execute one uniformly chosen enabled step; [None] when the system
    is quiescent. *)

val run_random :
  ?stop_when:(t -> bool) -> Resets_util.Prng.t -> steps:int -> t -> int
(** Execute up to [steps] random steps; returns how many executed.
    Stops early when quiescent or when [stop_when] becomes true. *)

(** {1 Snapshots (for the explorer)} *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
val snapshot_equal : snapshot -> snapshot -> bool
val snapshot_hash : snapshot -> int
