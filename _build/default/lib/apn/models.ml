open Value

type bounds = {
  s_max : int;
  p_resets : int;
  q_resets : int;
}

let default_bounds = { s_max = 6; p_resets = 1; q_resets = 1 }

(* ------------------------------------------------------------------ *)
(* Shared receive logic: the three-case window update of process q,
   including the paper's two shift loops. Returns true when the message
   is delivered. *)

let window_receive st s =
  let wdw = State.get_bool_array st "wdw" in
  let w = Array.length wdw in
  let r = State.get_int st "r" in
  if s <= r - w then false
  else if s <= r then begin
    let i = s - r + w in
    if wdw.(i - 1) then false
    else begin
      wdw.(i - 1) <- true;
      true
    end
  end
  else begin
    let i = ref (s - r + 1) and j = ref 1 in
    State.set_int st "r" s;
    while !i <= w do
      wdw.(!j - 1) <- wdw.(!i - 1);
      incr i;
      incr j
    done;
    while !j < w do
      wdw.(!j - 1) <- false;
      incr j
    done;
    wdw.(w - 1) <- true;
    true
  end

let mark_delivered ~s_max st s =
  if s >= 1 && s <= s_max then begin
    let dlv = State.get_bool_array st "dlv" in
    if dlv.(s - 1) then State.set_bool st "dup" true else dlv.(s - 1) <- true
  end;
  if s > State.get_int st "max_dlv" then State.set_int st "max_dlv" s

let fill_true a = Array.fill a 0 (Array.length a) true

(* ------------------------------------------------------------------ *)
(* Section 2: the original protocol. Reset actions model Section 3's
   volatile state loss directly. *)

let original_p ?(bounds = default_bounds) () =
  Process.make ~name:"p"
    ~init:[ ("s", Int 1); ("resets", Int 0); ("max_sent", Int 0) ]
    ~actions:
      [
        Process.Internal
          {
            label = "send";
            guard = (fun st -> State.get_int st "s" <= bounds.s_max);
            effect =
              (fun ctx st ->
                let s = State.get_int st "s" in
                ctx.send ~dst:"q" (Message.msg s);
                if s > State.get_int st "max_sent" then State.set_int st "max_sent" s;
                State.set_int st "s" (s + 1));
          };
        Process.Internal
          {
            label = "reset";
            guard = (fun st -> State.get_int st "resets" < bounds.p_resets);
            effect =
              (fun _ctx st ->
                State.set_int st "s" 1;
                State.set_int st "resets" (State.get_int st "resets" + 1));
          };
      ]

let original_q ?(bounds = default_bounds) ~w () =
  Process.make ~name:"q"
    ~init:
      [
        ("wdw", Bool_array (Array.make w true));
        ("r", Int 0);
        ("resets", Int 0);
        ("dlv", Bool_array (Array.make bounds.s_max false));
        ("dup", Bool false);
        ("max_dlv", Int 0);
      ]
    ~actions:
      [
        Process.Receive
          {
            label = "rcv";
            from_ = "p";
            guard = (fun _st -> true);
            effect =
              (fun _ctx st msg ->
                match msg.Message.args with
                | [ s ] -> if window_receive st s then mark_delivered ~s_max:bounds.s_max st s
                | [] | _ :: _ -> invalid_arg "original_q: malformed message");
          };
        Process.Internal
          {
            label = "reset";
            guard = (fun st -> State.get_int st "resets" < bounds.q_resets);
            effect =
              (fun _ctx st ->
                State.set_int st "r" 0;
                fill_true (State.get_bool_array st "wdw");
                State.set_int st "resets" (State.get_int st "resets" + 1));
          };
      ]

(* ------------------------------------------------------------------ *)
(* Section 4: the protocol with SAVE and FETCH.

   Persistent memory is the variable [pst]; a background SAVE in flight
   is [pend >= 0] and becomes durable when the separate [save_done]
   action fires — so a reset may strike between them. The blocking
   wakeup SAVE is [pend_wk], split across wakeup_begin/wakeup_done. *)

let augmented_p ?(bounds = default_bounds) ?leap ~kp () =
  if kp <= 0 then invalid_arg "Models.augmented_p: kp must be positive";
  let leap = Option.value ~default:(2 * kp) leap in
  Process.make ~name:"p"
    ~init:
      [
        ("s", Int 1);
        ("lst", Int 1);
        ("wait", Bool false);
        ("pend", Int (-1));
        ("pend_wk", Int (-1));
        ("pst", Int 1);
        ("resets", Int 0);
        ("max_sent", Int 0);
        ("stale_resume", Bool false);
      ]
    ~actions:
      [
        Process.Internal
          {
            label = "send";
            guard =
              (fun st ->
                (not (State.get_bool st "wait")) && State.get_int st "s" <= bounds.s_max);
            effect =
              (fun ctx st ->
                let s = State.get_int st "s" in
                ctx.send ~dst:"q" (Message.msg s);
                if s > State.get_int st "max_sent" then State.set_int st "max_sent" s;
                let s = s + 1 in
                State.set_int st "s" s;
                if s >= kp + State.get_int st "lst" then begin
                  (* Section 4 chooses Kp to be at least the number of
                     messages sendable during one SAVE, so by the time a
                     new SAVE begins the previous one has completed.
                     Encode that timing assumption by retiring a pending
                     save here. *)
                  let pend = State.get_int st "pend" in
                  if pend >= 0 then State.set_int st "pst" pend;
                  State.set_int st "lst" s;
                  State.set_int st "pend" s
                end);
          };
        Process.Internal
          {
            label = "save_done";
            guard = (fun st -> State.get_int st "pend" >= 0);
            effect =
              (fun _ctx st ->
                State.set_int st "pst" (State.get_int st "pend");
                State.set_int st "pend" (-1));
          };
        Process.Internal
          {
            label = "reset";
            guard = (fun st -> State.get_int st "resets" < bounds.p_resets);
            effect =
              (fun _ctx st ->
                State.set_bool st "wait" true;
                State.set_int st "pend" (-1);
                State.set_int st "pend_wk" (-1);
                State.set_int st "resets" (State.get_int st "resets" + 1));
          };
        Process.Internal
          {
            label = "wakeup_begin";
            guard =
              (fun st -> State.get_bool st "wait" && State.get_int st "pend_wk" < 0);
            effect =
              (fun _ctx st ->
                (* FETCH(s) then begin SAVE(s + leap); the paper's leap
                   is 2 Kp. *)
                State.set_int st "pend_wk" (State.get_int st "pst" + leap));
          };
        Process.Internal
          {
            label = "wakeup_done";
            guard =
              (fun st -> State.get_bool st "wait" && State.get_int st "pend_wk" >= 0);
            effect =
              (fun _ctx st ->
                let s = State.get_int st "pend_wk" in
                State.set_int st "pst" s;
                State.set_int st "s" s;
                State.set_int st "lst" s;
                if s <= State.get_int st "max_sent" then
                  State.set_bool st "stale_resume" true;
                State.set_int st "pend_wk" (-1);
                State.set_bool st "wait" false);
          };
      ]

let augmented_q ?(bounds = default_bounds) ?(robust = false) ?leap ~kq ~w () =
  if kq <= 0 then invalid_arg "Models.augmented_q: kq must be positive";
  if w <= 0 then invalid_arg "Models.augmented_q: w must be positive";
  let leap = Option.value ~default:(2 * kq) leap in
  Process.make ~name:"q"
    ~init:
      [
        ("wdw", Bool_array (Array.make w true));
        ("r", Int 0);
        ("lst", Int 0);
        ("wait", Bool false);
        ("pend", Int (-1));
        ("pend_wk", Int (-1));
        ("pst", Int 0);
        ("resets", Int 0);
        ("dlv", Bool_array (Array.make bounds.s_max false));
        ("dup", Bool false);
        ("max_dlv", Int 0);
        ("stale_edge", Bool false);
      ]
    ~actions:
      [
        Process.Receive
          {
            label = "rcv";
            from_ = "p";
            (* While waiting after a reset, q buffers: messages stay in
               the channel until the wakeup SAVE completes. *)
            guard = (fun st -> not (State.get_bool st "wait"));
            effect =
              (fun _ctx st msg ->
                match msg.Message.args with
                | [ s ] ->
                  if window_receive st s then mark_delivered ~s_max:bounds.s_max st s;
                  let r = State.get_int st "r" in
                  if robust && r > State.get_int st "pst" + leap then begin
                    (* Robust variant: never let the edge outrun durable
                       state by more than the wakeup leap — complete the
                       SAVE synchronously (a blocking write). *)
                    State.set_int st "pst" r;
                    State.set_int st "lst" r;
                    State.set_int st "pend" (-1)
                  end
                  else if r >= kq + State.get_int st "lst" then begin
                    (* Same Kq timing assumption as in augmented_p. *)
                    let pend = State.get_int st "pend" in
                    if pend >= 0 then State.set_int st "pst" pend;
                    State.set_int st "lst" r;
                    State.set_int st "pend" r
                  end
                | [] | _ :: _ -> invalid_arg "augmented_q: malformed message");
          };
        Process.Internal
          {
            label = "save_done";
            guard = (fun st -> State.get_int st "pend" >= 0);
            effect =
              (fun _ctx st ->
                State.set_int st "pst" (State.get_int st "pend");
                State.set_int st "pend" (-1));
          };
        Process.Internal
          {
            label = "reset";
            guard = (fun st -> State.get_int st "resets" < bounds.q_resets);
            effect =
              (fun _ctx st ->
                State.set_bool st "wait" true;
                State.set_int st "pend" (-1);
                State.set_int st "pend_wk" (-1);
                State.set_int st "resets" (State.get_int st "resets" + 1));
          };
        Process.Internal
          {
            label = "wakeup_begin";
            guard =
              (fun st -> State.get_bool st "wait" && State.get_int st "pend_wk" < 0);
            effect =
              (fun _ctx st ->
                State.set_int st "pend_wk" (State.get_int st "pst" + leap));
          };
        Process.Internal
          {
            label = "wakeup_done";
            guard =
              (fun st -> State.get_bool st "wait" && State.get_int st "pend_wk" >= 0);
            effect =
              (fun _ctx st ->
                let r = State.get_int st "pend_wk" in
                State.set_int st "pst" r;
                State.set_int st "r" r;
                State.set_int st "lst" r;
                fill_true (State.get_bool_array st "wdw");
                if r < State.get_int st "max_dlv" then State.set_bool st "stale_edge" true;
                State.set_int st "pend_wk" (-1);
                State.set_bool st "wait" false);
          };
      ]

(* ------------------------------------------------------------------ *)
(* Invariants. Missing ghost variables (e.g. [stale_resume] in the
   original p) make a claim vacuously true. *)

let ghost_bool system ~proc ~var =
  match State.get_bool (System.state_of system proc) var with
  | b -> b
  | exception Not_found -> false

let discrimination_holds system = not (ghost_bool system ~proc:"q" ~var:"dup")

let sender_freshness_holds system =
  not (ghost_bool system ~proc:"p" ~var:"stale_resume")

let receiver_freshness_holds system =
  not (ghost_bool system ~proc:"q" ~var:"stale_edge")

let all_section5_invariants system =
  discrimination_holds system && sender_freshness_holds system
  && receiver_freshness_holds system

(* ------------------------------------------------------------------ *)

let original_system ?(bounds = default_bounds) ?capacity ?adversary ?lossy ~w () =
  System.create ?capacity ?adversary ?lossy
    [ original_p ~bounds (); original_q ~bounds ~w () ]

let augmented_system ?(bounds = default_bounds) ?capacity ?adversary ?lossy ?robust
    ?leap_p ?leap_q ~kp ~kq ~w () =
  System.create ?capacity ?adversary ?lossy
    [
      augmented_p ~bounds ?leap:leap_p ~kp ();
      augmented_q ~bounds ?robust ?leap:leap_q ~kq ~w ();
    ]
