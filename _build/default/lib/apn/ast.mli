(** Abstract syntax for the Abstract Protocol Notation.

    The paper specifies its protocols in Gouda's notation: processes
    with constants, variables and guarded actions whose statements are
    [skip], simultaneous assignment, [send], [if … fi] selection and
    [do … od] iteration. This module represents that notation as data,
    so the paper's figures can be written down {e verbatim}, rendered
    back in the paper's concrete syntax ({!Pp}) and executed
    ({!Interp.compile} into a {!Process.t}).

    Ghost (history) variables used by the verification harness are
    ordinary variables here — marked so the printer can set them apart
    from the protocol proper. *)

type expr =
  | Int_lit of int
  | Bool_lit of bool
  | Var of string  (** variable or constant *)
  | Index of string * expr  (** [wdw\[e\]] *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Le of expr * expr
  | Lt of expr * expr
  | Ge of expr * expr
  | Gt of expr * expr
  | Eq of expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type lhs =
  | Lvar of string
  | Lindex of string * expr

type stmt =
  | Skip
  | Assign of lhs list * expr list
      (** simultaneous, like the paper's [wdw\[j\], j := false, j + 1] *)
  | Send of { dst : string; tag : string; args : expr list }
  | If of (expr * stmt) list  (** [if g1 → s1 \[\] g2 → s2 fi] *)
  | Do of (expr * stmt) list  (** [do g → s od] *)
  | Seq of stmt list

type var_decl = {
  var_name : string;
  init : Value.t;
  comment : string option;  (** the paper's [{…}] annotations *)
  ghost : bool;  (** instrumentation, not protocol state *)
}

type action =
  | Guarded of { label : string; guard : expr; body : stmt }
  | Receive of {
      label : string;
      from_ : string;
      tag : string;
      binder : string;  (** the message argument's name, e.g. [s] *)
      guard : expr;  (** [Bool_lit true] for the paper's actions *)
      body : stmt;
    }

type process = {
  name : string;
  consts : (string * int) list;
  vars : var_decl list;
  actions : action list;
}

(** {1 Construction helpers} *)

val var : string -> expr
val int : int -> expr
val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val not_ : expr -> expr
val assign : string -> expr -> stmt
val assign_many : (lhs * expr) list -> stmt
val seq : stmt list -> stmt

val plain_var : ?comment:string -> string -> Value.t -> var_decl
val ghost_var : ?comment:string -> string -> Value.t -> var_decl
