(** The paper's processes as {!Ast} values.

    These are the declarative twins of {!Models}: the same protocols,
    written in the Abstract Protocol Notation itself rather than as
    OCaml closures. They can be pretty-printed in the paper's concrete
    syntax (`ipsec-resets explore --print-model`, or {!Pp.pp_process})
    and compiled to executable processes with {!Interp.compile}.

    Faithfulness note: unlike the closure models, these declare the
    paper's scratch variables ([s], [i], [j] in process q) as real
    state, exactly as the paper's figures do. That enlarges the
    explored state space (scratch values linger between actions) but
    cannot change protocol behaviour — the test suite verifies the two
    formulations agree action-for-action in lockstep execution and
    reach the same verdicts under exploration. *)

val original_p : ?bounds:Models.bounds -> unit -> Ast.process
val original_q : ?bounds:Models.bounds -> w:int -> unit -> Ast.process
val augmented_p : ?bounds:Models.bounds -> ?leap:int -> kp:int -> unit -> Ast.process
val augmented_q : ?bounds:Models.bounds -> ?leap:int -> kq:int -> w:int -> unit -> Ast.process

val original_system :
  ?bounds:Models.bounds -> ?capacity:int -> ?adversary:bool -> ?lossy:bool -> w:int ->
  unit -> System.t
(** {!Interp.compile}d and assembled, mirroring
    {!Models.original_system}. *)

val augmented_system :
  ?bounds:Models.bounds ->
  ?capacity:int ->
  ?adversary:bool ->
  ?lossy:bool ->
  ?leap_p:int ->
  ?leap_q:int ->
  kp:int ->
  kq:int ->
  w:int ->
  unit ->
  System.t
