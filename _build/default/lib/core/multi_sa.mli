(** A host carrying many SAs: recovery at scale.

    Section 3's cost argument is per-host: "a host may have multiple
    SAs existing at the same time ... Requiring a host with multiple
    existing SAs to drop and reestablish all the existing SAs because
    of a reset stands for a huge amount of overhead". This module runs
    [n] parallel sender→receiver associations that share each host's
    disk and clock, resets the receiver host once (all SAs lose their
    volatile state together), and measures recovery under three
    disciplines:

    - [`Save_fetch_per_sa]: the paper, one blocking wakeup SAVE per SA,
      sequentially (the disk serializes writes);
    - [`Save_fetch_coalesced]: our extension — all recovered edges are
      written in a single disk operation (they fit in one block), so
      recovery is one SAVE regardless of [n];
    - [`Reestablish]: IKE-lite renegotiation per SA, sequentially.

    The coalesced mode also batches the periodic SAVEs: one write
    covers every SA that crossed its K threshold in the same window. *)

type discipline = [ `Save_fetch_per_sa | `Save_fetch_coalesced | `Reestablish ]

type config = {
  sa_count : int;
  k : int;
  save_latency : Resets_sim.Time.t;
  message_gap : Resets_sim.Time.t;  (** per SA *)
  link_latency : Resets_sim.Time.t;
  reset_at : Resets_sim.Time.t;
  downtime : Resets_sim.Time.t;
  horizon : Resets_sim.Time.t;
  ike_cost : Resets_ipsec.Ike.cost;
}

val default_config : config
(** 16 SAs, K = 25, the paper's latencies, reset at 10 ms for 1 ms,
    horizon 120 ms. *)

type outcome = {
  ready_time : Resets_sim.Time.t;
      (** reset → every SA's state recovered and processing again
          (downtime + the recovery discipline's own cost) *)
  recovery_time : Resets_sim.Time.t;
      (** reset → every SA delivering again (includes waiting out the
          leap: post-reset sequence numbers must pass the recovered
          edge); when [recovered_fully] is false this is the
          horizon-capped lower bound *)
  recovered_fully : bool;
  messages_lost : int;  (** arrivals at the dead/recovering host *)
  replay_accepted : int;
  duplicate_deliveries : int;
  disk_writes : int;  (** completed persistent writes at the receiver *)
  handshake_messages : int;  (** wire messages spent renegotiating *)
  delivered : int;
}

val run : ?seed:int -> discipline -> config -> outcome
