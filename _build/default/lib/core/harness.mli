(** End-to-end experiment harness.

    Wires a sender, a lossy/reordering link, a replay adversary and a
    receiver on one simulated clock, injects resets per a schedule,
    runs to a horizon and reports metrics. Every experiment in
    EXPERIMENTS.md is a call to {!run} with a different {!scenario}. *)

type traffic_model =
  | Constant
  | Poisson
  | Bursty of { burst_length : int; off_duration : Resets_sim.Time.t }

type attack =
  | No_attack
  | Replay_all_at of Resets_sim.Time.t
      (** Section 3's first attack: replay everything captured, in
          order *)
  | Wedge_at of Resets_sim.Time.t
      (** Section 3's third attack: replay the newest capture to shove
          q's window ahead of p *)
  | Flood of { start : Resets_sim.Time.t; gap : Resets_sim.Time.t }
      (** sustained replay of the capture buffer *)

type scenario = {
  seed : int;
  horizon : Resets_sim.Time.t;
  protocol : Protocol.t;
  message_gap : Resets_sim.Time.t;  (** base inter-message spacing *)
  traffic : traffic_model;
  link_latency : Resets_sim.Time.t;
  link_jitter : Resets_sim.Time.t;
  faults : Resets_sim.Link.faults;
  window : int;
  window_impl : Resets_ipsec.Replay_window.impl;
  framing : Packet.framing;
  resets : Resets_workload.Reset_schedule.t;
  attack : attack;
  sender_stop_at : Resets_sim.Time.t option;
      (** stop generating fresh traffic at this time (stages the
          Section 3 "p idle while the adversary replays" attacks) *)
  keep_trace : bool;
}

val default : scenario
(** The paper's operating point: 4 µs message gap, 100 µs SAVE latency
    (via {!Protocol.save_fetch} with Kp = Kq = 25), w = 64, clean 10 µs
    link, no resets, no attack, 100 ms horizon. *)

type result = {
  metrics : Metrics.t;
  trace : Resets_sim.Trace.t option;
  sender_next_seq : int;
  receiver_edge : int;
  saves_completed_p : int;
  saves_completed_q : int;
  saves_lost_p : int;
  saves_lost_q : int;
  link_sent : int;
  link_delivered : int;
  link_dropped : int;
  adversary_injected : int;
  end_time : Resets_sim.Time.t;
}

val run : scenario -> result
(** Deterministic for a given scenario (all randomness flows from
    [seed]). *)

val pp_result : Format.formatter -> result -> unit
