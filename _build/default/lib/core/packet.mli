(** What travels on the simulated p→q link: ESP wire bytes plus a
    provenance bit.

    The provenance bit exists only for measurement — it lets the
    metrics distinguish "a replayed message was accepted" from ordinary
    deliveries. The receiver's protocol logic never reads it (a real
    receiver could not), which the test suite checks by construction:
    {!Receiver} classifies packets before looking at provenance. *)

type t = {
  wire : string;
  replayed : bool;
}

val fresh : string -> t

val mark_replayed : t -> t
(** Used by the adversary when injecting a captured copy. *)

(** Wire framing for the sequence number. *)
type framing =
  | Seq64  (** full 64-bit number on the wire (RFC 4304 extended) *)
  | Esn32
      (** low 32 bits on the wire; the receiver infers the epoch from
          its window and the ICV covers the full number *)
