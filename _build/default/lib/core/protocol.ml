open Resets_sim

type persistence = {
  k : int;
  leap : int option;
  save_latency : Time.t;
  save_timer : Time.t option;
}

(* The paper's measured write-to-file latency on its reference machine. *)
let default_save_latency = Time.of_us 100

let persistence ?leap ?(save_latency = default_save_latency) ?save_timer ~k () =
  if k <= 0 then invalid_arg "Protocol.persistence: k must be positive";
  { k; leap; save_latency; save_timer }

let resolved_leap p =
  match p.leap with
  | Some leap -> leap
  | None -> 2 * p.k

type t =
  | Save_fetch of {
      sender : persistence;
      receiver : persistence;
      robust_receiver : bool;
      wakeup_buffer : bool;
    }
  | Volatile
  | Reestablish of { cost : Resets_ipsec.Ike.cost }

let save_fetch ?(robust_receiver = false) ?(wakeup_buffer = true) ?leap_p ?leap_q
    ?save_latency ?save_timer_p ~kp ~kq () =
  Save_fetch
    {
      sender = persistence ?leap:leap_p ?save_latency ?save_timer:save_timer_p ~k:kp ();
      receiver = persistence ?leap:leap_q ?save_latency ~k:kq ();
      robust_receiver;
      wakeup_buffer;
    }

let to_string = function
  | Save_fetch { sender; receiver; robust_receiver; _ } ->
    Printf.sprintf "save-fetch(Kp=%d, Kq=%d%s)" sender.k receiver.k
      (if robust_receiver then ", robust" else "")
  | Volatile -> "volatile"
  | Reestablish _ -> "reestablish"

let pp ppf t = Format.pp_print_string ppf (to_string t)
