(** SA lifetime rollover.

    The paper lists "lifetimes of the keys" among the SA attributes and
    its cost argument is about {e unplanned} renegotiation; this module
    covers the planned kind, because it interacts with SAVE/FETCH
    state: every SA epoch has its own sequence space, its own persisted
    counter, and the old epoch's persisted state must be retired when
    the SA is.

    Two strategies:

    - [Make_before_break]: renegotiation starts [rekey_margin] packets
      before the lifetime expires; the receiver holds both SAs in its
      SADB (lookup by SPI) until in-flight old-epoch traffic drains, so
      the switch loses nothing;
    - [Hard_expiry]: the SA is used until exhaustion, then traffic
      stops for a full renegotiation — the paper's re-establishment
      outage, planned. *)

type strategy = Make_before_break | Hard_expiry

type config = {
  lifetime_packets : int;
  rekey_margin : int;  (** packets before expiry to start renegotiating *)
  k : int;
  save_latency : Resets_sim.Time.t;
  message_gap : Resets_sim.Time.t;
  link_latency : Resets_sim.Time.t;
  ike_cost : Resets_ipsec.Ike.cost;
  horizon : Resets_sim.Time.t;
}

val default_config : config
(** Lifetime 1000 packets, margin 200, K = 25, 20 µs messages, a
    LAN-speed IKE (2.8 ms handshakes) and a 100 ms horizon — several
    rollovers per run. *)

type outcome = {
  rekeys_completed : int;
  delivered : int;
  messages_lost : int;  (** sent but never delivered *)
  duplicate_deliveries : int;
  max_delivery_gap : Resets_sim.Time.t;
      (** the longest service interruption observed *)
  persisted_keys_live : int;
      (** per-SPI counters still on disk at the end (old epochs must
          have been retired) *)
}

val run : ?seed:int -> strategy -> config -> outcome
