type t = {
  wire : string;
  replayed : bool;
}

let fresh wire = { wire; replayed = false }

let mark_replayed t = { t with replayed = true }

type framing = Seq64 | Esn32
