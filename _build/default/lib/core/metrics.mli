(** Experiment counters, shared by sender, receiver and harness.

    Metric definitions (used throughout EXPERIMENTS.md):

    - {e sent}: fresh messages p put on the wire;
    - {e skipped sequence numbers}: numbers rendered unusable by a
      wakeup leap (the paper's "lost sequence numbers", bounded by
      2·Kp);
    - {e reused sequence numbers}: numbers used twice by the sender
      (only the Volatile baseline does this);
    - {e fresh rejected}: arrivals that were not adversary injections
      but were discarded (stale or marked duplicate). With a loss- and
      duplication-free link this equals the paper's "discarded fresh
      messages" (bounded by 2·Kq after a receiver reset);
    - {e replay accepted}: adversary-injected packets that the receiver
      delivered — the paper's headline guarantee is that this stays 0
      under SAVE/FETCH;
    - {e duplicate deliveries}: a sequence number delivered twice
      (Discrimination violations observed from outside). *)

type t = {
  mutable sent : int;
  mutable skipped_seqnos : int;
  mutable reused_seqnos : int;
  mutable arrived_fresh : int;
  mutable arrived_replayed : int;
  mutable delivered : int;
  mutable duplicate_deliveries : int;
  mutable replay_accepted : int;
  mutable replay_rejected : int;
  mutable fresh_rejected : int;
  mutable fresh_rejected_undelivered : int;
      (** fresh rejections whose sequence number had not been delivered
          by any copy at rejection time (true discards) *)
  mutable bad_icv : int;
  mutable dropped_host_down : int;
  mutable buffered_during_wakeup : int;
  mutable p_resets : int;
  mutable q_resets : int;
  recovery_times : Resets_util.Stats.Sample.s;
      (** reset → endpoint ready again, seconds *)
  disruption_times : Resets_util.Stats.Sample.s;
      (** reset → first delivery after, seconds *)
  deliveries_by_seq : (int * int, int) Hashtbl.t;
      (** delivery count per (SA epoch, sequence number) — duplicate
          detection; the epoch isolates sequence spaces of renegotiated
          SAs *)
  mutable max_delivered : int;
  mutable epoch : int;
  mutable max_displacement : int;
      (** largest (right edge − sequence number) over accepted
          arrivals: the worst reorder the window absorbed *)
}

val create : unit -> t

val bump_epoch : t -> unit
(** A new SA was installed: its sequence-number space is distinct. *)

val record_delivery : t -> seq:int -> replayed:bool -> unit
(** Updates delivered / duplicate / replay-accepted counters and the
    per-sequence delivery table. *)

val record_rejection : t -> seq:int -> replayed:bool -> unit

val delivery_count : t -> seq:int -> int
(** How many times a given sequence number was delivered. *)

val delivered_distinct : t -> int

val max_delivered_seq : t -> int
(** 0 when nothing was delivered. *)

val pp_summary : Format.formatter -> t -> unit
