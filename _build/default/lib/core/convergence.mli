(** Post-run convergence verdicts: did a harness run satisfy the
    paper's Section 5 claims? *)

type verdict = {
  no_replay_accepted : bool;  (** the headline anti-replay guarantee *)
  no_duplicate_delivery : bool;  (** Discrimination *)
  no_seqno_reuse : bool;  (** the sender never reused a number *)
  skipped_within_bound : bool;
      (** skipped numbers ≤ resets × 2·Kp (vacuous without SAVE/FETCH) *)
  discards_within_bound : bool;
      (** true fresh discards ≤ resets × 2·Kq (vacuous without
          SAVE/FETCH) *)
  delivery_resumed : bool;
      (** something was delivered after the last reset (liveness) *)
}

val holds : verdict -> bool
(** All components true. *)

val check : scenario:Harness.scenario -> Harness.result -> verdict

val pp : Format.formatter -> verdict -> unit
