lib/core/packet.mli:
