lib/core/protocol.mli: Format Resets_ipsec Resets_sim
