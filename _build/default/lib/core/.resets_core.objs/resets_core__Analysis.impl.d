lib/core/analysis.ml: Float Int64 Resets_ipsec Resets_sim Time
