lib/core/rekey.ml: Engine Esp Hashtbl Ike Int32 Option Printf Prng Replay_window Resets_ipsec Resets_persist Resets_sim Resets_util Sa Sadb Sim_disk Time
