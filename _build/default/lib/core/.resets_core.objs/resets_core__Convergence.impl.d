lib/core/convergence.ml: Analysis Format Harness List Metrics Protocol Reset_schedule Resets_sim Resets_util Resets_workload
