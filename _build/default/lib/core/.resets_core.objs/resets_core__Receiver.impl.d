lib/core/receiver.ml: Engine Esp List Metrics Option Packet Printf Replay_window Resets_ipsec Resets_persist Resets_sim Sa Sim_disk Trace
