lib/core/convergence.mli: Format Harness
