lib/core/sender.mli: Metrics Packet Resets_ipsec Resets_persist Resets_sim Resets_workload
