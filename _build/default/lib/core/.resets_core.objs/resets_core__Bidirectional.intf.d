lib/core/bidirectional.mli: Resets_ipsec Resets_sim
