lib/core/analysis.mli: Resets_ipsec Resets_sim
