lib/core/harness.mli: Format Metrics Packet Protocol Resets_ipsec Resets_sim Resets_workload
