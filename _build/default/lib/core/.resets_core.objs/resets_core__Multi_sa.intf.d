lib/core/multi_sa.mli: Resets_ipsec Resets_sim
