lib/core/multi_sa.ml: Array Engine Esp Hashtbl Ike Int32 Int64 List Printf Prng Replay_window Resets_ipsec Resets_persist Resets_sim Resets_util Sa Sim_disk Time
