lib/core/sender.ml: Engine Esp Link Metrics Option Packet Printf Resets_ipsec Resets_persist Resets_sim Resets_workload Sa Sim_disk Time Trace
