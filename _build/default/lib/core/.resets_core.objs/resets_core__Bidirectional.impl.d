lib/core/bidirectional.ml: Dpd Engine Esp Link Metrics Option Packet Prng Receiver Resets_attack Resets_ipsec Resets_persist Resets_sim Resets_util Resets_workload Sa Sender Sim_disk Time Traffic
