lib/core/packet.ml:
