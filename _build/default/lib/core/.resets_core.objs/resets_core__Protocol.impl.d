lib/core/protocol.ml: Format Printf Resets_ipsec Resets_sim Time
