lib/core/metrics.mli: Format Hashtbl Resets_util
