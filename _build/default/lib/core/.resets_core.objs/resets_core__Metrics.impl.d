lib/core/metrics.ml: Format Hashtbl Option Resets_util Stats
