lib/core/receiver.mli: Metrics Packet Resets_ipsec Resets_persist Resets_sim
