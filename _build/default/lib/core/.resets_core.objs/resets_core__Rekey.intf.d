lib/core/rekey.mli: Resets_ipsec Resets_sim
