open Resets_util
open Resets_sim
open Resets_persist
open Resets_ipsec

type discipline = [ `Save_fetch_per_sa | `Save_fetch_coalesced | `Reestablish ]

type config = {
  sa_count : int;
  k : int;
  save_latency : Time.t;
  message_gap : Time.t;
  link_latency : Time.t;
  reset_at : Time.t;
  downtime : Time.t;
  horizon : Time.t;
  ike_cost : Ike.cost;
}

let default_config =
  {
    sa_count = 16;
    k = 25;
    save_latency = Time.of_us 100;
    message_gap = Time.of_us 100;
    link_latency = Time.of_us 10;
    reset_at = Time.of_ms 10;
    downtime = Time.of_ms 1;
    horizon = Time.of_ms 120;
    ike_cost = Ike.default_cost;
  }

type outcome = {
  ready_time : Time.t;
  recovery_time : Time.t;
  recovered_fully : bool;
  messages_lost : int;
  replay_accepted : int;
  duplicate_deliveries : int;
  disk_writes : int;
  handshake_messages : int;
  delivered : int;
}

(* One unidirectional association within the host pair. *)
type assoc = {
  index : int;
  mutable params : Sa.params;
  mutable send_seq : int;
  mutable window : Replay_window.t;
  mutable lst : int; (* last stored (or begun) edge *)
  mutable up : bool; (* receiver side of this SA is processing *)
  mutable delivered_after_reset : bool;
  delivered_seqs : (int * int, unit) Hashtbl.t; (* (epoch, seq) *)
  mutable epoch : int;
}

let run ?(seed = 11) discipline config =
  if config.sa_count <= 0 then invalid_arg "Multi_sa.run: sa_count must be positive";
  let engine = Engine.create () in
  let prng = Prng.create seed in
  let disk = Sim_disk.create ~name:"disk.q" ~latency:config.save_latency engine in
  let metrics_lost = ref 0 in
  let duplicate = ref 0 in
  let delivered_total = ref 0 in
  let handshake_messages = ref 0 in
  (* Durable edges under coalesced mode are managed here: one disk write
     persists a snapshot of every SA's edge. *)
  let durable_edges = Array.make config.sa_count 0 in
  let batch_in_flight = ref false in
  let assoc_of i =
    let params =
      Sa.derive_params ~spi:(Int32.of_int (0x4000 + i))
        ~secret:(Printf.sprintf "multi-sa-%d" i) ()
    in
    {
      index = i;
      params;
      send_seq = 1;
      window = Replay_window.create Replay_window.Bitmap_impl ~w:64;
      lst = 0;
      up = true;
      delivered_after_reset = false;
      delivered_seqs = Hashtbl.create 256;
      epoch = 0;
    }
  in
  let assocs = Array.init config.sa_count assoc_of in
  let host_down = ref false in
  let reset_happened = ref false in
  let all_recovered_at = ref None in
  let all_ready_at = ref None in
  let mark_ready_if_complete () =
    if !all_ready_at = None && Array.for_all (fun a -> a.up) assocs then
      all_ready_at := Some (Engine.now engine)
  in
  let key_of i = Printf.sprintf "sa-%d" i in
  List.iter (fun a -> Sim_disk.preload disk ~key:(key_of a.index) ~value:0)
    (Array.to_list assocs);
  (* ---- periodic SAVE disciplines ---------------------------------- *)
  let begin_periodic_save (a : assoc) =
    let r = Replay_window.right_edge a.window in
    if r >= config.k + a.lst then begin
      a.lst <- r;
      match discipline with
      | `Save_fetch_per_sa ->
        Sim_disk.save disk ~key:(key_of a.index) ~value:r ~on_complete:(fun () -> ())
      | `Save_fetch_coalesced ->
        if not !batch_in_flight then begin
          batch_in_flight := true;
          (* one write persists the edges of every SA as of now *)
          let snapshot =
            Array.map (fun a -> Replay_window.right_edge a.window) assocs
          in
          Sim_disk.save disk ~key:"batch" ~value:0 ~on_complete:(fun () ->
              batch_in_flight := false;
              Array.iteri (fun i v -> durable_edges.(i) <- v) snapshot)
        end
      | `Reestablish -> ()
    end
  in
  (* ---- the receive path ------------------------------------------- *)
  let receive (a : assoc) wire =
    if !host_down || not a.up then incr metrics_lost
    else
      match Esp.decap ~sa:a.params wire with
      | Error _ -> incr metrics_lost
      | Ok (seq, _payload) ->
        let verdict = Replay_window.admit a.window seq in
        if Replay_window.verdict_accepts verdict then begin
          incr delivered_total;
          if Hashtbl.mem a.delivered_seqs (a.epoch, seq) then incr duplicate
          else Hashtbl.replace a.delivered_seqs (a.epoch, seq) ();
          if !reset_happened && not a.delivered_after_reset then begin
            a.delivered_after_reset <- true;
            if Array.for_all (fun a -> a.delivered_after_reset) assocs then
              all_recovered_at := Some (Engine.now engine)
          end;
          begin_periodic_save a
        end
  in
  (* ---- the send loops --------------------------------------------- *)
  let rec send_loop (a : assoc) =
    let seq = a.send_seq in
    a.send_seq <- seq + 1;
    let wire = Esp.encap ~sa:a.params ~seq ~payload:"payload" in
    ignore
      (Engine.schedule_after engine ~after:config.link_latency (fun () ->
           receive a wire));
    ignore (Engine.schedule_after engine ~after:config.message_gap (fun () -> send_loop a))
  in
  Array.iter
    (fun a ->
      (* stagger start times so SAs do not act in lockstep *)
      let offset =
        Time.of_ns
          (Int64.of_int (Prng.int prng (Int64.to_int (Time.to_ns config.message_gap) + 1)))
      in
      ignore (Engine.schedule_after engine ~after:offset (fun () -> send_loop a)))
    assocs;
  (* ---- reset and recovery ----------------------------------------- *)
  let recover_per_sa () =
    (* FETCH + blocking SAVE per SA, serialized on the one disk. *)
    let rec recover i =
      if i < config.sa_count then begin
        let a = assocs.(i) in
        let fetched =
          match Sim_disk.fetch disk ~key:(key_of i) with
          | Some v -> v
          | None -> 0
        in
        let edge = fetched + (2 * config.k) in
        Sim_disk.save disk ~key:(key_of i) ~value:edge ~on_complete:(fun () ->
            Replay_window.resume_at a.window edge;
            a.lst <- edge;
            a.up <- true;
            mark_ready_if_complete ();
            recover (i + 1))
      end
    in
    recover 0
  in
  let recover_coalesced () =
    (* every edge leaps; one write makes them all durable *)
    let edges = Array.map (fun v -> v + (2 * config.k)) durable_edges in
    Sim_disk.save disk ~key:"batch" ~value:1 ~on_complete:(fun () ->
        Array.iteri
          (fun i a ->
            durable_edges.(i) <- edges.(i);
            Replay_window.resume_at a.window edges.(i);
            a.lst <- edges.(i);
            a.up <- true)
          assocs;
        mark_ready_if_complete ())
  in
  let recover_reestablish () =
    let rec recover i =
      if i < config.sa_count then begin
        let a = assocs.(i) in
        handshake_messages := !handshake_messages + Ike.message_count;
        Ike.establish engine ~cost:config.ike_cost ~prng
          ~spi:(Int32.of_int (0x6000 + (config.sa_count * a.epoch) + i))
          ~on_complete:(fun params ->
            a.params <- params;
            a.send_seq <- 1;
            a.window <- Replay_window.create Replay_window.Bitmap_impl ~w:64;
            a.lst <- 0;
            a.epoch <- a.epoch + 1;
            a.up <- true;
            mark_ready_if_complete ();
            recover (i + 1))
      end
    in
    recover 0
  in
  ignore
    (Engine.schedule_at engine ~at:config.reset_at (fun () ->
         reset_happened := true;
         host_down := true;
         batch_in_flight := false;
         Sim_disk.crash disk;
         Array.iter
           (fun a ->
             a.up <- false;
             Replay_window.volatile_reset a.window)
           assocs));
  ignore
    (Engine.schedule_at engine
       ~at:(Time.add config.reset_at config.downtime)
       (fun () ->
         host_down := false;
         match discipline with
         | `Save_fetch_per_sa -> recover_per_sa ()
         | `Save_fetch_coalesced -> recover_coalesced ()
         | `Reestablish -> recover_reestablish ()));
  ignore (Engine.run ~until:config.horizon engine);
  {
    ready_time =
      (match !all_ready_at with
      | Some t -> Time.diff t config.reset_at
      | None -> Time.diff config.horizon config.reset_at);
    recovery_time =
      (match !all_recovered_at with
      | Some t -> Time.diff t config.reset_at
      | None -> Time.diff config.horizon config.reset_at);
    recovered_fully = !all_recovered_at <> None;
    messages_lost = !metrics_lost;
    replay_accepted = 0 (* no adversary in this harness *);
    duplicate_deliveries = !duplicate;
    disk_writes = Sim_disk.saves_completed disk;
    handshake_messages = !handshake_messages;
    delivered = !delivered_total;
  }
