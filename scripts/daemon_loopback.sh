#!/usr/bin/env sh
# Two-process daemon loopback smoke: a receiver and a sender daemon
# exchange ESP frames over a UNIX-datagram socket pair, the receiver
# is SIGKILLed mid-run, then restarted on the same durable store. The
# restarted receiver's own convergence gate (recovered edge, leap
# within 2k, no cross-incarnation replay, zero duplicates) is the
# verdict: its exit code propagates as this script's exit code.
#
# Usage: scripts/daemon_loopback.sh [path-to-ipsec_resets.exe]
# With no argument the binary is built and located via dune.
# BATCH=<n> selects the wire batch depth (recvmmsg/sendmmsg frames per
# syscall) for both daemons; default 32, BATCH=1 runs unbatched.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -ge 1 ]; then
  BIN=$1
else
  dune build bin/ipsec_resets.exe
  BIN=_build/default/bin/ipsec_resets.exe
fi

work=$(mktemp -d "${TMPDIR:-/tmp}/daemon-loopback.XXXXXX")
SENDER_PID=
RECV_PID=
cleanup() {
  [ -n "$SENDER_PID" ] && kill "$SENDER_PID" 2>/dev/null || true
  [ -n "$RECV_PID" ] && kill -9 "$RECV_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT INT TERM

SOCK="$work/recv.sock"
STORE="$work/store"
STATS="$work/recv.stats"
SAS=2
K=8
RATE=400
BATCH=${BATCH:-32}

# Spawn a receiver incarnation and wait for it to bind, retrying on a
# bind failure: a stale socket file left by a killed receiver (or a
# path collision with a concurrent run) makes the bind fail fast, and
# a retry after cleaning the path is the correct response — not a
# script failure. Extra flags ($@) select the incarnation.
start_recv() {
  attempt=0
  while :; do
    attempt=$((attempt + 1))
    # a dead receiver cannot unlink its own socket; clean it before
    # the bind instead of failing on the leftover
    [ -e "$SOCK" ] && rm -f "$SOCK"
    "$BIN" serve --role recv --bind "unix:$SOCK" \
      --sas "$SAS" -k "$K" --batch "$BATCH" \
      --store "$STORE" --stats "$STATS" "$@" &
    RECV_PID=$!
    i=0
    while [ ! -S "$SOCK" ]; do
      # died before binding: address in use or transient — retry
      kill -0 "$RECV_PID" 2>/dev/null || break
      i=$((i + 1))
      [ "$i" -gt 50 ] && break
      sleep 0.1
    done
    [ -S "$SOCK" ] && return 0
    kill -9 "$RECV_PID" 2>/dev/null || true
    wait "$RECV_PID" 2>/dev/null || true
    RECV_PID=
    if [ "$attempt" -ge 3 ]; then
      echo "receiver never bound $SOCK after $attempt attempts" >&2
      return 1
    fi
    echo "receiver bind attempt $attempt failed, cleaning and retrying" >&2
    sleep 0.2
  done
}

# Incarnation 1: receiver daemon, generously long duration — it will
# not die of old age, we kill it.
start_recv --duration 30 --quiet

# Sender runs across the whole experiment, including the receiver's
# downtime, so the restarted receiver must leap over the gap.
"$BIN" serve --role send --peer "unix:$SOCK" \
  --sas "$SAS" -k "$K" --rate "$RATE" --duration 8 --batch "$BATCH" --quiet &
SENDER_PID=$!

sleep 2
echo "killing receiver (pid $RECV_PID) mid-run"
kill -9 "$RECV_PID"
wait "$RECV_PID" 2>/dev/null || true
RECV_PID=
rm -f "$SOCK"

# Let traffic flow into the void for a moment: the sender keeps
# advancing sequence numbers while the receiver is down.
sleep 1

# Incarnation 2: same store, same stats journal, recovery expected.
# Its gate checks: edge recovered from the store, deliveries resumed,
# fresh rejections <= 2k, zero duplicates, zero ICV failures, and the
# minimum delivered sequence number strictly above the previous
# incarnation's maximum (no cross-incarnation replay).
start_recv --duration 6 --expect-recovery --json "$work/recv2.json"
rc=0
wait "$RECV_PID" || rc=$?
RECV_PID=

wait "$SENDER_PID" 2>/dev/null || true
SENDER_PID=

if [ "$rc" -eq 0 ]; then
  echo "daemon loopback: kill/recover converged (gate passed)"
else
  echo "daemon loopback: recovery gate FAILED (exit $rc)" >&2
  [ -f "$work/recv2.json" ] && cat "$work/recv2.json" >&2
fi
exit "$rc"
