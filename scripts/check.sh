#!/usr/bin/env sh
# Smoke gate: build, full test suite, and a quick bench pass that
# exercises the JSON artifact pipeline end to end. Run from anywhere;
# artifacts land in a throwaway directory.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

# odoc is optional in the dev image; build the docs only when present.
if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== dune build @doc skipped (odoc not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "== bench smoke (E1 E6 E14, JSON artifacts) =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
# E1 exercises the single-SA harness path, E6 the SAVE-interval rule,
# E14 the unified Endpoint/Host datapath at 1024 SAs.
dune exec bench/main.exe -- E1 E6 E14 --json="$out"

for f in BENCH_E1.json BENCH_E6.json BENCH_E14.json; do
  test -s "$out/$f" || { echo "missing artifact $f" >&2; exit 1; }
  grep -q '"pass": true' "$out/$f" || { echo "$f reports pass=false" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$out/$f" >/dev/null \
      || { echo "$f is not valid JSON" >&2; exit 1; }
  fi
done

echo "== allocation-regression gate (MICRO) =="
dune exec bench/main.exe -- MICRO --json="$out" >/dev/null
test -s "$out/BENCH_MICRO.json" || { echo "missing BENCH_MICRO.json" >&2; exit 1; }

# Budgets: minor-heap words allocated per packet on the codec hot
# paths, ~1.8x the steady-state numbers committed with the zero-copy
# refactor (encap 49, decap 60 at 256 B). A regression here means a
# copy or a boxed intermediate crept back into the per-packet path.
alloc_gate() {
  op=$1; budget=$2
  words=$(awk -v op="micro/$op" '
    $0 ~ "\"operation\": \"" op "\"" { hot = 1 }
    hot && /"minor_words_per_packet":/ {
      gsub(/[ ,]/, "", $2); print $2; exit
    }' "$out/BENCH_MICRO.json")
  test -n "$words" || { echo "no minor_words_per_packet for $op" >&2; exit 1; }
  if awk -v w="$words" -v b="$budget" 'BEGIN { exit !(w > b) }'; then
    echo "allocation regression: $op allocates $words minor words/packet (budget $budget)" >&2
    exit 1
  fi
  echo "$op: $words minor words/packet (budget $budget)"
}
alloc_gate esp-encap-256B 90
alloc_gate esp-decap-256B 110

echo "OK"
