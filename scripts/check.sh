#!/usr/bin/env sh
# Smoke gate: build, full test suite, and a quick bench pass that
# exercises the JSON artifact pipeline end to end. Run from anywhere;
# artifacts land in a throwaway directory.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

# odoc is optional in the dev image; build the docs only when present.
if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== dune build @doc skipped (odoc not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "== bench smoke (E1 E6 E14, JSON artifacts) =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
# E1 exercises the single-SA harness path, E6 the SAVE-interval rule,
# E14 the unified Endpoint/Host datapath plus the domain sweep: the
# same workloads at 1 and 2 domains, diffed below. Smoke sizes keep the
# sweep fast; the committed artifact uses the full 256/1024/4096 sweep
# and the full 100k/1M scale sweep.
dune exec bench/main.exe -- E1 E6 E14 --json="$out" \
  --domains=1,2 --sweep-sizes=64,256,1024 --scale-sizes=512,2048

for f in BENCH_E1.json BENCH_E6.json BENCH_E14.json; do
  test -s "$out/$f" || { echo "missing artifact $f" >&2; exit 1; }
  grep -q '"pass": true' "$out/$f" || { echo "$f reports pass=false" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$out/$f" >/dev/null \
      || { echo "$f is not valid JSON" >&2; exit 1; }
  fi
done

echo "== multicore determinism gate (E14 domain sweep) =="
# The bench already fails its own artifact on a protocol mismatch; this
# re-derives the verdict from the JSON so the gate also catches a bench
# that silently stopped recording the sweep. Protocol fields must be
# byte-identical between the 1-domain and 2-domain rows of every size.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/BENCH_E14.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
PROTOCOL = ("delivered", "messages_lost", "replay_accepted",
            "duplicate_deliveries", "recovered_fully", "ready_s",
            "recovery_s")
bad = False
for table in ("domain_sweep", "scale_sweep"):
    rows = doc["measured"].get(table, [])
    if not rows:
        sys.exit(f"BENCH_E14.json has no {table} rows")
    by_size = {}
    for r in rows:
        by_size.setdefault(r["sa_count"], {})[r["domains"]] = \
            tuple(r[k] for k in PROTOCOL)
    for n, per_d in sorted(by_size.items()):
        sigs = set(per_d.values())
        if len(sigs) != 1:
            bad = True
            print(f"{table}: {n} SAs: protocol outcome differs across "
                  "domain counts:", file=sys.stderr)
            for d, s in sorted(per_d.items()):
                print(f"  domains={d}: {dict(zip(PROTOCOL, s))}",
                      file=sys.stderr)
        else:
            ds = ",".join(str(d) for d in sorted(per_d))
            print(f"{table}: {n} SAs: identical protocol outcome at "
                  f"domains {ds}")
sys.exit(1 if bad else 0)
PY
else
  echo "python3 missing: relying on the in-bench determinism check only"
fi

# Throughput gate: 2 domains should beat 1 by >= 1.3x on the 1024-SA
# row — but only where the hardware can possibly deliver it. On a
# single-core runner the determinism gates above still bind; speedup
# is a property of the machine, not the code.
ncores=$( (nproc || getconf _NPROCESSORS_ONLN) 2>/dev/null || echo 1)
if [ "$ncores" -ge 2 ] && command -v python3 >/dev/null 2>&1; then
  python3 - "$out/BENCH_E14.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc["measured"].get("domain_sweep", [])
s = [r["speedup_vs_1_domain"] for r in rows
     if r["sa_count"] == 1024 and r["domains"] == 2]
if not s:
    sys.exit("no 1024-SA 2-domain row in the sweep")
if s[0] < 1.3:
    sys.exit(f"1024 SAs at 2 domains: {s[0]:.2f}x speedup, gate is 1.3x")
print(f"1024 SAs at 2 domains: {s[0]:.2f}x speedup (gate 1.3x)")
PY
else
  echo "speedup gate skipped (cores=$ncores, needs >= 2 and python3)"
fi

echo "== chaos smoke gate (fixed seeds, invariant monitor) =="
# A small fixed batch of random fault schedules (resets, burst loss,
# disk faults, adversary) under the invariant monitor. Three binds:
# the stock protocol must hold on every seed (exit 0), the run must be
# deterministic (same seeds, same JSON report minus nothing — the
# whole report is re-diffed), and the deliberately weakened --weak-leap
# receiver must yield a violation the shrinker minimizes (exit 2).
dune exec bin/ipsec_resets.exe -- chaos --seeds 25 --quiet \
  --json "$out/chaos-a.json" \
  || { echo "stock chaos batch reported violations" >&2; exit 1; }
dune exec bin/ipsec_resets.exe -- chaos --seeds 25 --quiet \
  --json "$out/chaos-b.json" \
  || { echo "stock chaos batch reported violations on re-run" >&2; exit 1; }
cmp -s "$out/chaos-a.json" "$out/chaos-b.json" \
  || { echo "chaos batch is not deterministic across re-runs" >&2; exit 1; }
echo "stock: 25 seeds clean, re-run byte-identical"
if dune exec bin/ipsec_resets.exe -- chaos --seeds 25 --weak-leap --quiet \
    --json "$out/chaos-weak.json"; then
  echo "weak-leap chaos batch found no violation (expected one)" >&2; exit 1
fi
grep -q '"shrink_runs"' "$out/chaos-weak.json" \
  || { echo "weak-leap report carries no shrunk counterexample" >&2; exit 1; }
grep -q '"replay_identical": true' "$out/chaos-weak.json" \
  || { echo "weak-leap counterexample did not replay identically" >&2; exit 1; }
echo "weak leap: violation found, shrunk, replay-identical"
# Stealth mode judges each schedule against a paired attack-free
# oracle: slow disks plus phase-locked forced resets must degrade
# goodput somewhere in 15 seeds, and the shrinker must minimize the
# degradation to a replay-identical counterexample (exit 2).
if dune exec bin/ipsec_resets.exe -- chaos --seeds 15 --stealth --quiet \
    --json "$out/chaos-stealth.json"; then
  echo "stealth chaos batch found no degradation (expected some)" >&2; exit 1
fi
grep -q '"shrink_runs"' "$out/chaos-stealth.json" \
  || { echo "stealth report carries no shrunk counterexample" >&2; exit 1; }
grep -q '"replay_identical": true' "$out/chaos-stealth.json" \
  || { echo "stealth counterexample did not replay identically" >&2; exit 1; }
grep -q '"goodput-degraded"' "$out/chaos-stealth.json" \
  || { echo "stealth report carries no goodput-degraded violation" >&2; exit 1; }
echo "stealth: degradation found, shrunk, replay-identical"

echo "== static-policy compatibility gate (BENCH_E1 byte-identity) =="
# The K policy refactor must leave the fault-free Static path
# byte-identical: the E1 artifact regenerated by the bench smoke above
# has to match the committed one on every protocol field. Only
# machine-dependent timing fields (wall clock, throughput, speedup)
# are stripped before the diff.
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_E1.json "$out/BENCH_E1.json" <<'PY'
import json, sys

MACHINE = {"wall_clock_s", "wall_clock_ns", "events_per_sec",
           "speedup_vs_1_domain", "pps_per_core",
           "shard_events_per_sec_min", "shard_events_per_sec_max"}

def strip(x):
    if isinstance(x, dict):
        return {k: strip(v) for k, v in x.items() if k not in MACHINE}
    if isinstance(x, list):
        return [strip(v) for v in x]
    return x

a, b = (strip(json.load(open(p))) for p in sys.argv[1:3])
if a != b:
    sys.exit("regenerated BENCH_E1.json differs from the committed "
             "artifact on a protocol field: the Static policy path is "
             "no longer byte-compatible")
print("regenerated E1 identical to the committed artifact "
      "(machine-dependent fields stripped)")
PY
else
  echo "byte-identity gate skipped (python3 missing)"
fi

echo "== adaptive-K frontier gate (E16, stealth attacks) =="
# The goodput-vs-oracle frontier: {static, adaptive} x {stealth
# attacks} x {disk fault plans}, each cell judged against a paired
# attack-free oracle replay of the same seed. The bench fails its own
# artifact on any broken claim; this re-derives the headline verdicts
# from the JSON so a bench that silently stopped checking cannot pass.
dune exec bench/main.exe -- E16 --json="$out"
test -s "$out/BENCH_E16.json" || { echo "missing BENCH_E16.json" >&2; exit 1; }
grep -q '"pass": true' "$out/BENCH_E16.json" \
  || { echo "BENCH_E16.json reports pass=false" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/BENCH_E16.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = doc["measured"]["frontier"]
if not rows:
    sys.exit("BENCH_E16.json has no frontier rows")
cell = {(r["policy"], r["attack"], r["disk"]): r for r in rows}

bad = []
# Attack-free paired runs must be bit-identical to their oracle.
for r in rows:
    if r["attack"] == "none" and r["goodput_ratio"] != 1.0:
        bad.append(f"attack-free {r['policy']}/{r['disk']}: "
                   f"ratio {r['goodput_ratio']} != 1.0")
# Stealth attacks inject nothing: every clean-disk cell, and every
# adaptive cell on any disk, must be invariant-clean.
for r in rows:
    if r["disk"] == "clean" and r["violations"]:
        bad.append(f"clean-disk {r['policy']}/{r['attack']}: "
                   f"{r['violations']} violations")
    if r["policy"] == "adaptive" and r["violations"]:
        bad.append(f"adaptive {r['attack']}/{r['disk']}: "
                   f"{r['violations']} violations")
# The frontier separation: under SAVE-window drop on the slow disk,
# static-K degrades hard while adaptive-K holds most of the oracle.
st = cell[("static", "save-drop", "slow")]["goodput_ratio"]
ad = cell[("adaptive", "save-drop", "slow")]["goodput_ratio"]
if not st < 0.75:
    bad.append(f"static save-drop/slow no longer degrades: ratio {st:.3f}")
if not ad >= 0.6:
    bad.append(f"adaptive save-drop/slow below the 0.6 gate: {ad:.3f}")
if not ad > st + 0.05:
    bad.append(f"adaptive ({ad:.3f}) does not beat static ({st:.3f})")
if bad:
    sys.exit("E16 frontier gate failed:\n  " + "\n  ".join(bad))
print(f"frontier holds: save-drop/slow static {st:.3f} vs "
      f"adaptive {ad:.3f}; attack-free ratio 1.0; adaptive "
      "invariant-clean on every cell")
PY
else
  echo "frontier re-derivation skipped (python3 missing): in-bench checks only"
fi

echo "== K-floor and stealth CLI gate =="
# --k auto and the safety-floor rejection on the run CLI, plus one
# stealth paired run: the attack must cost goodput without tripping
# the invariant monitor (it injects nothing).
if dune exec bin/ipsec_resets.exe -- run --kp 3 --save-latency 200 --gap 4 \
    >/dev/null 2>&1; then
  echo "run accepted --kp 3 below the derived floor (expected rejection)" >&2
  exit 1
fi
dune exec bin/ipsec_resets.exe -- run --kp auto --kq auto \
  --save-latency 200 --gap 4 --json >"$out/run-auto.json" \
  || { echo "run --kp auto failed" >&2; exit 1; }
echo "floor rejection and --kp auto behave"
# Exit 2 is the convergence verdict saying the attack hurt (expected
# here); only a usage/internal error (1, 124) fails the gate.
rc=0
dune exec bin/ipsec_resets.exe -- run --attack stealth-save-drop@5 \
  --paired --json >"$out/run-stealth.json" || rc=$?
case $rc in
  0|2) ;;
  *) echo "stealth paired run errored (exit $rc)" >&2; exit 1 ;;
esac
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/run-stealth.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
ratio = doc["goodput_ratio"]
violations = doc["primary"]["violations"]
if violations:
    sys.exit(f"stealth save-drop tripped the invariant monitor: {violations}")
if not ratio < 1.0:
    sys.exit(f"stealth save-drop cost no goodput (ratio {ratio})")
print(f"stealth save-drop: goodput ratio {ratio:.3f}, invariant-clean")
PY
else
  grep -q '"violations": \[\]' "$out/run-stealth.json" \
    || { echo "stealth paired run reports violations" >&2; exit 1; }
fi

echo "== allocation-regression gate (MICRO) =="
dune exec bench/main.exe -- MICRO --json="$out" >/dev/null
test -s "$out/BENCH_MICRO.json" || { echo "missing BENCH_MICRO.json" >&2; exit 1; }

# Budgets: minor-heap words allocated per packet on the codec hot
# paths, ~1.8x the steady-state numbers committed with the zero-copy
# refactor (encap 49, decap 60 at 256 B). A regression here means a
# copy or a boxed intermediate crept back into the per-packet path.
alloc_gate() {
  op=$1; budget=$2
  words=$(awk -v op="micro/$op" '
    $0 ~ "\"operation\": \"" op "\"" { hot = 1 }
    hot && /"minor_words_per_packet":/ {
      gsub(/[ ,]/, "", $2); print $2; exit
    }' "$out/BENCH_MICRO.json")
  test -n "$words" || { echo "no minor_words_per_packet for $op" >&2; exit 1; }
  if awk -v w="$words" -v b="$budget" 'BEGIN { exit !(w > b) }'; then
    echo "allocation regression: $op allocates $words minor words/packet (budget $budget)" >&2
    exit 1
  fi
  echo "$op: $words minor words/packet (budget $budget)"
}
alloc_gate esp-encap-256B 90
alloc_gate esp-decap-256B 110
# The batched wire path's per-frame codec work (syscalls excluded):
# encap straight into a tx-pool slot, decap straight out of an rx-arena
# slot. Steady state is 12 / 21 minor words per frame; the budgets are
# ~2x that. A regression means a string or boxed intermediate crept
# back into the zero-copy datapath.
alloc_gate esp-encap-into-256B 25
alloc_gate esp-decap-slice-256B 45
# The engine tick loop: one timer-wheel event (fire + self-reschedule)
# allocates ~16 words steady state; anything past 20 means a boxed
# deadline, a closure, or a list node crept into the per-event path.
alloc_gate engine-wheel-event 20
# Flat-SADB replay admission must stay allocation-free like the other
# window backends (budget 1 tolerates measurement jitter, not boxing).
alloc_gate window-admit-flat 1

echo "== batched wire sweep gate (MICRO wire table) =="
# Re-derive the wire sweep verdicts from the JSON: rows at batch 1, 8
# and 32 must exist; every row must account for every attempted frame
# (delivered = kernel-accepted, accepted + shed = attempted — loss is
# counted, never silent); rows whose flush depth fits the unix-dgram
# receive queue must deliver everything; and batching must not cost
# throughput against the unbatched row (10% jitter allowance — the
# absolute pps number is a property of the machine, not gated here).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/BENCH_MICRO.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
rows = {r["batch"]: r for r in doc["measured"].get("wire", [])}
bad = []
for b in (1, 8, 32):
    if b not in rows:
        bad.append(f"no wire row at batch {b}")
for b, r in sorted(rows.items()):
    if r["delivered"] != r["accepted"] or r["accepted"] + r["tx_errors"] != r["packets"]:
        bad.append(f"batch {b}: silent loss — delivered {r['delivered']}, "
                   f"accepted {r['accepted']}, shed {r['tx_errors']}, "
                   f"attempted {r['packets']}")
    if b <= 8 and (r["delivered"] != r["packets"] or r["tx_errors"]):
        bad.append(f"batch {b}: shallow flush lost frames "
                   f"({r['delivered']}/{r['packets']}, {r['tx_errors']} shed)")
if 1 in rows and 8 in rows and rows[8]["pps"] < 0.9 * rows[1]["pps"]:
    bad.append(f"batch 8 ({rows[8]['pps']:.0f} pps) slower than "
               f"unbatched ({rows[1]['pps']:.0f} pps)")
if bad:
    sys.exit("wire sweep gate failed:\n  " + "\n  ".join(bad))
for b, r in sorted(rows.items()):
    print(f"batch {b:2d}: {r['pps']:8.0f} pps/core, "
          f"{r['delivered']}/{r['packets']} delivered, {r['tx_errors']} shed"
          + (" (mmsg)" if r.get("mmsg") else " (fallback)"))
PY
else
  echo "wire sweep re-derivation skipped (python3 missing): in-bench checks only"
fi

echo "== daemon loopback smoke (unix-dgram, kill/recover, batch sweep) =="
# Two real processes over a UNIX-datagram socket: receiver daemon is
# SIGKILLed mid-run and restarted on the same durable store while the
# sender keeps transmitting. The restarted receiver's convergence gate
# (edge recovered, leap within 2k, no cross-incarnation replay, zero
# duplicates) is the verdict; nonzero exit fails the check. Run once
# unbatched and once at the full batch depth: convergence must not
# depend on the wire batching mode.
for wire_batch in 1 32; do
  echo "-- daemon loopback at --batch $wire_batch --"
  BATCH=$wire_batch sh scripts/daemon_loopback.sh \
    _build/default/bin/ipsec_resets.exe \
    || { echo "daemon loopback kill/recover gate failed at --batch $wire_batch" >&2; exit 1; }
done

echo "== E17 fleet smoke (supervised kill/recover, one cell per reset scope) =="
# One matrix cell per reset scope (single-SA / whole-SADB / disk-lost)
# through the fault-injecting fleet supervisor: daemon pairs over a
# real wire, the receiver SIGKILLed and respawned (store wiped for the
# disk-lost scope), convergence and the 2k fresh-loss bound re-derived
# from the heartbeat JSONL alone. Exit 0 is the verdict that every
# smoke cell held; exit 2 says a cell broke the bound or failed to
# converge; anything else is an infrastructure error. The wall-clock
# cap keeps a hung daemon pair from wedging the gate.
rc=0
if command -v timeout >/dev/null 2>&1; then
  timeout 300 dune exec bin/ipsec_resets.exe -- fleet --smoke \
    --workdir "$out/fleet" --json "$out/fleet-smoke.json" --quiet || rc=$?
else
  dune exec bin/ipsec_resets.exe -- fleet --smoke \
    --workdir "$out/fleet" --json "$out/fleet-smoke.json" --quiet || rc=$?
fi
case $rc in
  0) ;;
  2) echo "E17 smoke: a cell broke the 2k bound or failed to converge" >&2
     [ -f "$out/fleet-smoke.json" ] && cat "$out/fleet-smoke.json" >&2
     exit 1 ;;
  124) echo "E17 smoke: wall-clock timeout — hung daemon pair?" >&2; exit 1 ;;
  *) echo "E17 smoke errored (exit $rc)" >&2; exit 1 ;;
esac
test -s "$out/fleet-smoke.json" || { echo "missing fleet-smoke.json" >&2; exit 1; }
grep -q '"all_ok": true' "$out/fleet-smoke.json" \
  || { echo "fleet-smoke.json does not report all_ok" >&2; exit 1; }
echo "E17 smoke: all reset-scope cells converged within the 2k bound"

echo "== engine determinism smoke (wheel vs legacy heap) =="
# MICRO replays a fixed-seed schedule of one-shot, periodic, tied and
# cancelled timers on both engines and records a named check; require
# that check to exist and pass so a silent drop of the comparison
# cannot slip through.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$out/BENCH_MICRO.json" <<'PY'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
name = "wheel and heap fire an identical fixed-seed schedule in the same order"
checks = [c for c in doc["checks"] if c["name"] == name]
if not checks:
    sys.exit("BENCH_MICRO.json carries no wheel-vs-heap determinism check")
if not all(c["pass"] for c in checks):
    sys.exit("wheel and heap diverged on the fixed-seed schedule")
print("wheel and heap fire order identical on the fixed-seed schedule")
PY
else
  grep -q '"wheel and heap fire an identical fixed-seed schedule in the same order"' \
    "$out/BENCH_MICRO.json" \
    || { echo "no wheel-vs-heap determinism check in BENCH_MICRO.json" >&2; exit 1; }
fi

echo "OK"
