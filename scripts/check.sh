#!/usr/bin/env sh
# Smoke gate: build, full test suite, and a quick bench pass that
# exercises the JSON artifact pipeline end to end. Run from anywhere;
# artifacts land in a throwaway directory.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

# odoc is optional in the dev image; build the docs only when present.
if command -v odoc >/dev/null 2>&1; then
  echo "== dune build @doc =="
  dune build @doc
else
  echo "== dune build @doc skipped (odoc not installed) =="
fi

echo "== dune runtest =="
dune runtest

echo "== bench smoke (E1 E6 E14, JSON artifacts) =="
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
# E1 exercises the single-SA harness path, E6 the SAVE-interval rule,
# E14 the unified Endpoint/Host datapath at 1024 SAs.
dune exec bench/main.exe -- E1 E6 E14 --json="$out"

for f in BENCH_E1.json BENCH_E6.json BENCH_E14.json; do
  test -s "$out/$f" || { echo "missing artifact $f" >&2; exit 1; }
  grep -q '"pass": true' "$out/$f" || { echo "$f reports pass=false" >&2; exit 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$out/$f" >/dev/null \
      || { echo "$f is not valid JSON" >&2; exit 1; }
  fi
done

echo "OK"
