(* ipsec-resets: command-line driver for the reproduction.

   Subcommands:
     run      one harness scenario (protocol, faults, attack from flags)
     explore  bounded model checking of the APN protocol models
     bidir    the Section 6 prolonged-reset scheme
     kmin     the Section 4 SAVE-interval table
     trace    run a small scenario and dump the event trace

   Observability: `run --json` prints the machine-readable metrics
   record (same schema as the BENCH_*.json artifacts, see
   EXPERIMENTS.md); `run --trace-out FILE` / `trace --trace-out FILE`
   write the event trace as JSONL. *)

open Cmdliner
open Resets_core
open Resets_sim
open Resets_workload

(* ------------------------------------------------------------------ *)
(* Shared argument parsers *)

let time_of_ms f = Time.of_ns (Int64.of_float (f *. 1e6))

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let horizon_arg =
  Arg.(
    value
    & opt float 100.
    & info [ "horizon" ] ~docv:"MS" ~doc:"Simulation horizon in milliseconds.")

let protocol_arg =
  let doc =
    "Recovery discipline: $(b,save-fetch) (the paper), $(b,volatile) (Section 2 \
     baseline), $(b,reestablish) (IETF baseline), or $(b,robust) (save-fetch with \
     the bounded-slide receiver)."
  in
  Arg.(
    value
    & opt (enum
             [
               ("save-fetch", `Save_fetch);
               ("volatile", `Volatile);
               ("reestablish", `Reestablish);
               ("robust", `Robust);
             ])
        `Save_fetch
    & info [ "protocol" ] ~docv:"P" ~doc)

(* A SAVE interval is a positive count or the literal "auto": derive
   the Section 4 floor ceil(T_save / t_msg) from --save-latency and
   --gap. Explicit counts below that floor are rejected (the paper's
   safety argument needs K >= kmin); "auto" always lands on it. *)
let k_auto_conv =
  let parse s =
    match s with
    | "auto" -> Ok `Auto
    | _ -> (
      match int_of_string_opt s with
      | Some v when v > 0 -> Ok (`Fixed v)
      | Some v -> Error (`Msg (Printf.sprintf "K must be positive, got %d" v))
      | None -> Error (`Msg (Printf.sprintf "%S is not a count or \"auto\"" s)))
  in
  let print ppf = function
    | `Auto -> Format.pp_print_string ppf "auto"
    | `Fixed v -> Format.pp_print_int ppf v
  in
  Arg.conv (parse, print)

(* [None] means "flag absent": the default applies unvalidated, so a
   run that only turns a latency knob keeps working; an explicit count
   is held to the floor. *)
let k_arg name default =
  Arg.(
    value
    & opt (some k_auto_conv) None
    & info [ name ] ~docv:"K"
        ~doc:
          (Printf.sprintf
             "SAVE interval %s (default %d): a count, or $(b,auto) to derive \
              the floor ceil(T_save/t_msg) from --save-latency and --gap. \
              Explicit counts below the floor are rejected."
             name default))

let gap_arg =
  Arg.(
    value
    & opt float 4.
    & info [ "gap" ] ~docv:"US" ~doc:"Inter-message gap in microseconds.")

let save_latency_arg =
  Arg.(
    value
    & opt float 100.
    & info [ "save-latency" ] ~docv:"US" ~doc:"SAVE (disk write) latency in microseconds.")

let reset_arg =
  Arg.(
    value
    & opt_all (pair ~sep:'@' (enum [ ("p", Reset_schedule.Sender); ("q", Reset_schedule.Receiver) ]) float) []
    & info [ "reset" ] ~docv:"HOST@MS"
        ~doc:"Reset host $(b,p) or $(b,q) at the given millisecond (repeatable).")

let downtime_arg =
  Arg.(
    value
    & opt float 1.
    & info [ "downtime" ] ~docv:"MS" ~doc:"How long a reset host stays down (ms).")

(* The attack plan is parsed by cmdliner itself (a bad plan is a usage
   error, reported before anything runs); the flood's injection gap is
   only known once --gap is parsed, so the conv carries the raw
   trigger time and [build_attack] finishes the job. *)
let attack_conv =
  let parse s =
    let timed tag ms k =
      match float_of_string_opt ms with
      | Some f when f >= 0. -> Ok (k f)
      | Some _ | None ->
        Error (`Msg (Printf.sprintf "bad time in attack plan %s@%s" tag ms))
    in
    match String.split_on_char '@' s with
    | [ "none" ] -> Ok `No_attack
    | [ "replay-all"; ms ] -> timed "replay-all" ms (fun f -> `Replay_all f)
    | [ "wedge"; ms ] -> timed "wedge" ms (fun f -> `Wedge f)
    | [ "flood"; ms ] -> timed "flood" ms (fun f -> `Flood f)
    | [ "stealth-save-drop"; ms ] ->
      timed "stealth-save-drop" ms (fun f -> `Stealth_save_drop f)
    | [ "stealth-reset-storm"; ms ] ->
      timed "stealth-reset-storm" ms (fun f -> `Stealth_reset_storm f)
    | [ "stealth-recovery-jam"; ms ] ->
      timed "stealth-recovery-jam" ms (fun f -> `Stealth_recovery_jam f)
    | _ -> Error (`Msg (Printf.sprintf "unknown attack plan %S" s))
  in
  let print ppf = function
    | `No_attack -> Format.pp_print_string ppf "none"
    | `Replay_all f -> Format.fprintf ppf "replay-all@%g" f
    | `Wedge f -> Format.fprintf ppf "wedge@%g" f
    | `Flood f -> Format.fprintf ppf "flood@%g" f
    | `Stealth_save_drop f -> Format.fprintf ppf "stealth-save-drop@%g" f
    | `Stealth_reset_storm f -> Format.fprintf ppf "stealth-reset-storm@%g" f
    | `Stealth_recovery_jam f -> Format.fprintf ppf "stealth-recovery-jam@%g" f
  in
  Arg.conv (parse, print)

(* Stealth plans force [--attack-resets] sender resets of [--downtime]
   each; the jam/reset timing itself is derived from the protocol's own
   SAVE cadence inside the harness. *)
let build_attack ~gap ~downtime ~stealth_resets = function
  | `No_attack -> Harness.No_attack
  | `Replay_all f -> Harness.Replay_all_at (time_of_ms f)
  | `Wedge f -> Harness.Wedge_at (time_of_ms f)
  | `Flood f -> Harness.Flood { start = time_of_ms f; gap }
  | `Stealth_save_drop f ->
    Harness.Stealth_save_drop
      { from = time_of_ms f; resets = stealth_resets; downtime }
  | `Stealth_reset_storm f ->
    Harness.Stealth_reset_storm
      { from = time_of_ms f; resets = stealth_resets; downtime }
  | `Stealth_recovery_jam f ->
    Harness.Stealth_recovery_jam
      { from = time_of_ms f; resets = stealth_resets; downtime }

let attack_arg =
  let doc =
    "Adversary plan: $(b,none), $(b,replay-all@MS), $(b,wedge@MS), \
     $(b,flood@MS), or a goodput-degradation plan $(b,stealth-save-drop@MS), \
     $(b,stealth-reset-storm@MS), $(b,stealth-recovery-jam@MS) (safety-clean: \
     nothing injected, the link is jammed and resets forced phase-locked to \
     the SAVE cadence; see --attack-resets)."
  in
  Arg.(value & opt attack_conv `No_attack & info [ "attack" ] ~docv:"PLAN" ~doc)

let attack_resets_arg =
  Arg.(
    value
    & opt int 3
    & info [ "attack-resets" ] ~docv:"N"
        ~doc:"How many sender resets a stealth attack plan forces.")

(* Strictly positive integer (cmdliner rejects 0 and negatives at parse
   time, so e.g. --domains=0 never reaches the simulation). *)
let positive_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | Some _ -> Error (`Msg (Printf.sprintf "%s is not positive" s))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let stop_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "stop-sender-at" ] ~docv:"MS" ~doc:"Stop fresh traffic at this time (ms).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Print the run as a machine-readable JSON record (metrics, harness \
           counters, convergence verdict) instead of text.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the event trace to $(docv) as JSONL (one event per line).")

let write_trace_jsonl path trace =
  match open_out path with
  | exception Sys_error msg ->
    Printf.eprintf "cannot write trace: %s\n" msg;
    exit 1
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Resets_sim.Trace.dump_jsonl oc trace)

let build_protocol variant ~adaptive ~kp ~kq ~save_latency =
  let pol k =
    if adaptive then Some (K_policy.adaptive ~initial_k:k ()) else None
  in
  match variant with
  | `Save_fetch ->
    Protocol.save_fetch ?policy_p:(pol kp) ?policy_q:(pol kq) ~kp ~kq
      ~save_latency ()
  | `Robust ->
    Protocol.save_fetch ~robust_receiver:true ?policy_p:(pol kp)
      ?policy_q:(pol kq) ~kp ~kq ~save_latency ()
  | `Volatile -> Protocol.Volatile
  | `Reestablish -> Protocol.Reestablish { cost = Resets_ipsec.Ike.default_cost }

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let go seed horizon variant kp kq gap save_latency adaptive paired resets
      downtime attack attack_resets stop json trace_out =
    let message_gap = Time.of_ns (Int64.of_float (gap *. 1e3)) in
    let save_latency_t = Time.of_ns (Int64.of_float (save_latency *. 1e3)) in
    let downtime_t = time_of_ms downtime in
    let floor_k =
      Analysis.k_of_rates ~t_save:save_latency_t ~t_msg:message_gap
    in
    let resolve name = function
      | None -> Ok 25
      | Some `Auto -> Ok floor_k
      | Some (`Fixed v) ->
        if v < floor_k then
          Error
            (Printf.sprintf
               "--%s %d is below the derived safety floor K >= \
                ceil(T_save/t_msg) = %d (save latency %gus, message gap \
                %gus): a SAVE every %d messages cannot complete before the \
                next is due, so the durable counter falls behind unboundedly. \
                Use --%s auto or a count >= %d."
               name v floor_k save_latency gap v name floor_k)
        else Ok v
    in
    match (resolve "kp" kp, resolve "kq" kq) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok kp, Ok kq ->
      let attack =
        build_attack ~gap:message_gap ~downtime:downtime_t
          ~stealth_resets:attack_resets attack
      in
      let scenario =
        {
          Harness.default with
          seed;
          horizon = time_of_ms horizon;
          protocol =
            build_protocol variant ~adaptive ~kp ~kq
              ~save_latency:save_latency_t;
          message_gap;
          resets =
            List.concat_map
              (fun (target, ms) ->
                Reset_schedule.single ~at:(time_of_ms ms) ~downtime:downtime_t
                  target)
              resets
            |> List.sort (fun a b ->
                   Time.compare a.Reset_schedule.at b.Reset_schedule.at);
          attack;
          sender_stop_at = Option.map time_of_ms stop;
          keep_trace = Harness.default.Harness.keep_trace || trace_out <> None;
        }
      in
      if paired then begin
        let deg = Harness.run_paired scenario in
        let result = deg.Harness.primary in
        let verdict = Convergence.check ~scenario result in
        (match (trace_out, result.Harness.trace) with
        | Some path, Some trace -> write_trace_jsonl path trace
        | Some _, None | None, _ -> ());
        if json then
          print_endline
            (Resets_util.Json.to_string_pretty
               (Report.degradation_to_json ~verdict deg))
        else begin
          Format.printf "%a@." Harness.pp_result result;
          Format.printf
            "paired oracle: goodput %.3f of attack-free twin \
             (%d/%d distinct), disruption %+.6fs, recovery %+.6fs@."
            deg.Harness.goodput_ratio
            (result.Harness.metrics.Metrics.delivered
            - result.Harness.metrics.Metrics.duplicate_deliveries)
            (deg.Harness.oracle.Harness.metrics.Metrics.delivered
            - deg.Harness.oracle.Harness.metrics.Metrics.duplicate_deliveries)
            deg.Harness.disruption_delta_s deg.Harness.recovery_delta_s;
          Format.printf "verdict: %a@." Convergence.pp verdict
        end;
        `Ok (if Convergence.holds verdict then 0 else 2)
      end
      else begin
        let result = Harness.run scenario in
        let verdict = Convergence.check ~scenario result in
        (match (trace_out, result.Harness.trace) with
        | Some path, Some trace -> write_trace_jsonl path trace
        | Some _, None | None, _ -> ());
        if json then
          print_endline
            (Resets_util.Json.to_string_pretty
               (Report.result_to_json ~verdict result))
        else begin
          Format.printf "%a@." Harness.pp_result result;
          Format.printf "verdict: %a@." Convergence.pp verdict
        end;
        `Ok (if Convergence.holds verdict then 0 else 2)
      end
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Run the adaptive K policy: both endpoints re-derive their SAVE \
             cadence online from EWMA-percentile observations of SAVE latency \
             and inter-send gap, seeded at the resolved --kp/--kq.")
  in
  let paired =
    Arg.(
      value & flag
      & info [ "paired" ]
          ~doc:
            "Replay the same seed attack-free as an oracle and report goodput \
             and convergence-time degradation against it.")
  in
  let term =
    Term.(
      ret
        (const go $ seed_arg $ horizon_arg $ protocol_arg $ k_arg "kp" 25
       $ k_arg "kq" 25 $ gap_arg $ save_latency_arg $ adaptive $ paired
       $ reset_arg $ downtime_arg $ attack_arg $ attack_resets_arg $ stop_arg
       $ json_arg $ trace_out_arg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one simulated scenario and print metrics + verdict.")
    term

(* ------------------------------------------------------------------ *)
(* explore *)

let explore_cmd =
  let go model s_max p_resets q_resets k w capacity adversary max_states print_model =
    let bounds = Resets_apn.Models.{ s_max; p_resets; q_resets } in
    if print_model then begin
      let open Resets_apn in
      let processes =
        match model with
        | `Original ->
          [ Models_ast.original_p ~bounds (); Models_ast.original_q ~bounds ~w () ]
        | `Augmented | `Robust ->
          [
            Models_ast.augmented_p ~bounds ~kp:k ();
            Models_ast.augmented_q ~bounds ~kq:k ~w ();
          ]
      in
      List.iter (fun p -> Format.printf "%s@.@." (Pp.process_to_string p)) processes
    end;
    let system, invariant =
      match model with
      | `Original ->
        ( Resets_apn.Models.original_system ~bounds ~capacity ~adversary ~w (),
          Resets_apn.Models.discrimination_holds )
      | `Augmented ->
        ( Resets_apn.Models.augmented_system ~bounds ~capacity ~adversary ~kp:k ~kq:k ~w (),
          Resets_apn.Models.all_section5_invariants )
      | `Robust ->
        ( Resets_apn.Models.augmented_system ~bounds ~capacity ~adversary ~robust:true
            ~kp:k ~kq:k ~w (),
          Resets_apn.Models.all_section5_invariants )
    in
    let outcome = Resets_apn.Explorer.explore ~max_states ~invariant system in
    Format.printf "%a@." Resets_apn.Explorer.pp_outcome outcome;
    match outcome with
    | Resets_apn.Explorer.Violation _ -> 2
    | Resets_apn.Explorer.Exhausted _ | Resets_apn.Explorer.Limit_reached _ -> 0
  in
  let model =
    Arg.(
      value
      & opt (enum [ ("original", `Original); ("augmented", `Augmented); ("robust", `Robust) ])
          `Augmented
      & info [ "model" ] ~docv:"M" ~doc:"Which protocol model to explore.")
  in
  let s_max = Arg.(value & opt int 4 & info [ "s-max" ] ~doc:"Max sequence number.") in
  let p_resets = Arg.(value & opt int 1 & info [ "p-resets" ] ~doc:"Reset budget for p.") in
  let q_resets = Arg.(value & opt int 1 & info [ "q-resets" ] ~doc:"Reset budget for q.") in
  let k = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Kp = Kq.") in
  let w = Arg.(value & opt int 2 & info [ "w" ] ~doc:"Window width.") in
  let capacity = Arg.(value & opt int 2 & info [ "capacity" ] ~doc:"Channel bound.") in
  let adversary =
    Arg.(value & flag & info [ "adversary" ] ~doc:"Enable the replay adversary.")
  in
  let max_states =
    Arg.(value & opt int 500_000 & info [ "max-states" ] ~doc:"State budget.")
  in
  let print_model =
    Arg.(
      value & flag
      & info [ "print-model" ]
          ~doc:"Print the processes in the paper's Abstract Protocol Notation first.")
  in
  let term =
    Term.(
      const go $ model $ s_max $ p_resets $ q_resets $ k $ w $ capacity $ adversary
      $ max_states $ print_model)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Exhaustively model-check a protocol model within bounds.")
    term

(* ------------------------------------------------------------------ *)
(* bidir *)

let bidir_cmd =
  let go reset_at downtime horizon replay =
    let outcome =
      Bidirectional.run ~replay_announce:replay ~reset_at:(time_of_ms reset_at)
        ~downtime:(time_of_ms downtime) ~horizon:(time_of_ms horizon)
        Bidirectional.default_config
    in
    Format.printf "death detected: %s@."
      (match outcome.Bidirectional.death_detected_at with
      | Some t -> Format.asprintf "%a" Time.pp t
      | None -> "never");
    Format.printf "sa survived: %b@." outcome.Bidirectional.sa_survived;
    Format.printf "announce accepted: %b@." outcome.Bidirectional.announce_accepted;
    Format.printf "replayed announce rejected: %b@."
      outcome.Bidirectional.replayed_announce_rejected;
    (match outcome.Bidirectional.convergence_time with
    | Some t -> Format.printf "convergence: %a@." Time.pp t
    | None -> Format.printf "convergence: never@.");
    0
  in
  let reset_at =
    Arg.(value & opt float 10. & info [ "reset-at" ] ~docv:"MS" ~doc:"Reset time.")
  in
  let downtime =
    Arg.(value & opt float 20. & info [ "outage" ] ~docv:"MS" ~doc:"Outage length.")
  in
  let horizon =
    Arg.(value & opt float 120. & info [ "horizon" ] ~docv:"MS" ~doc:"Horizon.")
  in
  let replay =
    Arg.(value & flag & info [ "replay-announce" ] ~doc:"Replay the announcement.")
  in
  Cmd.v
    (Cmd.info "bidir" ~doc:"Run the Section 6 prolonged-reset recovery scheme.")
    Term.(const go $ reset_at $ downtime $ horizon $ replay)

(* ------------------------------------------------------------------ *)
(* multi-sa *)

let multi_sa_cmd =
  let go n domains discipline attack_at trace_out =
    (* Nonsensical combinations are cmdliner usage errors, reported
       before any simulation runs. *)
    if domains > n then
      `Error
        (true,
         Printf.sprintf "--domains %d exceeds --sas %d: a shard needs at least one SA"
           domains n)
    else
      match trace_out with
      | Some path
        when Sys.file_exists path && Sys.is_directory path ->
        `Error (true, Printf.sprintf "--trace-out %s is a directory" path)
      | Some path
        when (let dir = Filename.dirname path in
              not (Sys.file_exists dir && Sys.is_directory dir)) ->
        `Error
          (true,
           Printf.sprintf "--trace-out directory %s does not exist"
             (Filename.dirname path))
      | _ ->
        let attack =
          match attack_at with
          | None -> Endpoint.No_attack
          | Some at -> Endpoint.Replay_all_at (time_of_ms at)
        in
        let cfg =
          {
            Multi_sa.default_config with
            Multi_sa.sa_count = n;
            attack;
            keep_trace = trace_out <> None;
          }
        in
        let o = Multi_sa.run ~domains discipline cfg in
        (match trace_out with
        | None -> ()
        | Some path -> (
          (* the shards' traces, merged deterministically into ONE
             file — packet-level events are identical for any
             --domains value; disk bookkeeping (crash/snapshot
             records) and equal-timestamp tie order are per-shard
             (see Shard) *)
          match open_out path with
          | exception Sys_error msg ->
            Printf.eprintf "cannot write trace: %s\n" msg;
            exit 1
          | oc ->
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                List.iter
                  (fun entry ->
                    output_string oc
                      (Resets_util.Json.to_string (Trace.entry_to_json entry));
                    output_char oc '\n')
                  o.Multi_sa.trace)));
        Format.printf "ready: %a%s@." Time.pp o.Multi_sa.ready_time
          (if o.Multi_sa.recovered_fully then "" else " (horizon-capped)");
        Format.printf "delivering again: %a@." Time.pp o.Multi_sa.recovery_time;
        Format.printf "messages lost: %d@." o.Multi_sa.messages_lost;
        Format.printf "disk writes: %d@." o.Multi_sa.disk_writes;
        Format.printf "handshake messages: %d@." o.Multi_sa.handshake_messages;
        Format.printf "duplicates: %d@." o.Multi_sa.duplicate_deliveries;
        if domains > 1 then
          Array.iter
            (fun (s : Multi_sa.shard_stat) ->
              Format.printf "shard [%d,%d): %d events in %.3fs@."
                s.Multi_sa.stat_lo s.Multi_sa.stat_hi s.Multi_sa.stat_events_fired
                s.Multi_sa.stat_wall_s)
            o.Multi_sa.shard_stats;
        if attack_at <> None then begin
          Format.printf "replays injected: %d@." o.Multi_sa.adversary_injected;
          Format.printf "replays accepted: %d@." o.Multi_sa.replay_accepted
        end;
        if o.Multi_sa.duplicate_deliveries = 0 && o.Multi_sa.replay_accepted = 0
        then `Ok 0
        else `Ok 2
  in
  let n =
    Arg.(
      value
      & opt positive_int_conv 16
      & info [ "sas" ] ~docv:"N" ~doc:"Number of SAs on the host.")
  in
  let domains =
    Arg.(
      value
      & opt positive_int_conv 1
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Shard the simulation across $(docv) OCaml domains. Protocol-level \
             results are identical for every value; only wall-clock time \
             changes. Must not exceed --sas.")
  in
  let attack_at =
    Arg.(
      value
      & opt (some float) None
      & info [ "attack" ] ~docv:"MS"
          ~doc:"Replay every captured packet against every SA's link at MS.")
  in
  let discipline =
    Arg.(
      value
      & opt (enum
               [
                 ("per-sa", `Save_fetch_per_sa);
                 ("coalesced", `Save_fetch_coalesced);
                 ("reestablish", `Reestablish);
               ])
          `Save_fetch_per_sa
      & info [ "discipline" ] ~docv:"D" ~doc:"Recovery discipline.")
  in
  Cmd.v
    (Cmd.info "multi-sa" ~doc:"Recover a host with many SAs after a reset.")
    Term.(ret (const go $ n $ domains $ discipline $ attack_at $ trace_out_arg))

(* ------------------------------------------------------------------ *)
(* rekey *)

let rekey_cmd =
  let go strategy lifetime margin =
    let cfg =
      {
        Rekey.default_config with
        Rekey.lifetime_packets = lifetime;
        rekey_margin = margin;
      }
    in
    let o = Rekey.run strategy cfg in
    Format.printf "rekeys completed: %d@." o.Rekey.rekeys_completed;
    Format.printf "delivered: %d (lost %d)@." o.Rekey.delivered o.Rekey.messages_lost;
    Format.printf "max delivery gap: %a@." Time.pp o.Rekey.max_delivery_gap;
    Format.printf "persisted counters live: %d@." o.Rekey.persisted_keys_live;
    if o.Rekey.duplicate_deliveries = 0 then 0 else 2
  in
  let strategy =
    Arg.(
      value
      & opt (enum [ ("mbb", Rekey.Make_before_break); ("hard", Rekey.Hard_expiry) ])
          Rekey.Make_before_break
      & info [ "strategy" ] ~docv:"S" ~doc:"$(b,mbb) or $(b,hard).")
  in
  let lifetime =
    Arg.(value & opt int 1000 & info [ "lifetime" ] ~docv:"N" ~doc:"SA lifetime in packets.")
  in
  let margin =
    Arg.(value & opt int 200 & info [ "margin" ] ~docv:"N" ~doc:"Rekey margin in packets.")
  in
  Cmd.v
    (Cmd.info "rekey" ~doc:"Planned SA rollover: make-before-break vs hard expiry.")
    Term.(const go $ strategy $ lifetime $ margin)

(* ------------------------------------------------------------------ *)
(* kmin *)

let kmin_cmd =
  let go () =
    Format.printf "minimum safe SAVE interval K = ceil(T_save / t_msg):@.@.";
    Format.printf "%12s" "T \\ gap";
    let gaps = [ 1; 2; 4; 8; 16; 40 ] in
    List.iter (fun g -> Format.printf "%8dus" g) gaps;
    Format.printf "@.";
    List.iter
      (fun t_us ->
        Format.printf "%10dus" t_us;
        List.iter
          (fun g ->
            let k =
              Analysis.k_min ~save_latency:(Time.of_us t_us) ~message_gap:(Time.of_us g)
            in
            Format.printf "%10d" k)
          gaps;
        Format.printf "@.")
      [ 25; 50; 100; 200; 500; 1000 ];
    Format.printf
      "@.the paper's operating point (100us write, 4us/message) gives K >= 25.@.";
    0
  in
  Cmd.v
    (Cmd.info "kmin" ~doc:"Print the Section 4 SAVE-interval table.")
    Term.(const go $ const ())

(* ------------------------------------------------------------------ *)
(* chaos *)

let chaos_cmd =
  let go seeds seed_base horizon weak_leap retries stealth min_goodput quiet
      json_out =
    let open Resets_chaos in
    let config =
      {
        Explorer.default_config with
        Explorer.seeds;
        seed_base;
        horizon = time_of_ms horizon;
        weak_leap;
        save_retries = retries;
        stealth;
        min_goodput;
      }
    in
    let progress (i, violations) =
      if not quiet then
        if violations > 0 then
          Format.printf "seed %4d: %d violation(s)@." (seed_base + i)
            violations
        else if (i + 1) mod 50 = 0 then
          Format.printf "seed %4d: clean so far@." (seed_base + i)
    in
    let report = Explorer.explore ~progress config in
    (match json_out with
    | Some path ->
      Resets_util.Json.write_file path (Explorer.report_to_json report);
      Format.printf "[json] %s@." path
    | None -> ());
    Format.printf "%d schedule(s), %d violating, %d harness run(s)@."
      (List.length report.Explorer.outcomes)
      (List.length report.Explorer.violating_seeds)
      report.Explorer.total_runs;
    (match report.Explorer.shrunk with
    | None -> Format.printf "no violations: protocol held under chaos@."
    | Some s ->
      Format.printf "minimal counterexample (after %d shrink runs):@."
        s.Explorer.shrink_runs;
      Format.printf "%s@."
        (Resets_util.Json.to_string_pretty
           (Explorer.schedule_to_json s.Explorer.minimal));
      List.iter
        (fun v ->
          Format.printf "  %a@." Resets_core.Invariant.pp_violation v)
        s.Explorer.violations;
      Format.printf "replay identical: %b@." report.Explorer.replay_identical);
    if
      report.Explorer.violating_seeds = [] && report.Explorer.replay_identical
    then 0
    else 2
  in
  let seeds =
    Arg.(
      value
      & opt positive_int_conv 50
      & info [ "seeds" ] ~docv:"N" ~doc:"How many random fault schedules to run.")
  in
  let seed_base =
    Arg.(
      value & opt int 1
      & info [ "seed-base" ] ~docv:"N" ~doc:"First schedule seed.")
  in
  let horizon =
    Arg.(
      value & opt float 50.
      & info [ "horizon" ] ~docv:"MS" ~doc:"Per-schedule horizon (ms).")
  in
  let weak_leap =
    Arg.(
      value & flag
      & info [ "weak-leap" ]
          ~doc:
            "Weaken the receiver wakeup leap from the paper's 2K to K — the \
             unsound configuration the explorer is expected to catch and \
             shrink.")
  in
  let retries =
    Arg.(
      value
      & opt positive_int_conv 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Recovery retry budget before an SA degrades to re-establishment.")
  in
  let stealth =
    Arg.(
      value & flag
      & info [ "stealth" ]
          ~doc:
            "Draw adversaries from the stealth goodput-degradation family, \
             slow the simulated disk, and judge each schedule by a paired \
             attack-free oracle as well as the invariant monitor: goodput \
             below --min-goodput of the oracle counts as a violation and is \
             shrunk like one.")
  in
  let min_goodput =
    Arg.(
      value
      & opt float 0.6
      & info [ "min-goodput" ] ~docv:"R"
          ~doc:
            "Stealth mode's tolerated fraction of oracle goodput (0..1).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No per-seed progress output.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full report to $(docv).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run random fault schedules (resets, link faults, disk faults, \
          replay adversary — and, with --stealth, goodput-degradation \
          adversaries judged against a paired oracle) under the invariant \
          monitor and shrink any violation to a minimal counterexample.")
    Term.(
      const go $ seeds $ seed_base $ horizon $ weak_leap $ retries $ stealth
      $ min_goodput $ quiet $ json_out)

(* ------------------------------------------------------------------ *)
(* serve: one side of the association as a real daemon over a socket *)

let serve_cmd =
  let open Resets_net in
  let go role addr peer secret spi_base sas k adaptive window rate duration
      store_dir stats_path json_path workers expect_recovery heartbeat batch
      rcvbuf sndbuf discipline churn impair impair_seed store_faults fault_seed
      graceful quiet =
    let parse_addr label = function
      | None -> None
      | Some s -> (
        match Transport_udp.addr_of_string s with
        | Ok a -> Some a
        | Error msg ->
          Printf.eprintf "serve: bad %s: %s\n%!" label msg;
          exit 1)
    in
    (* "--k auto" on a live daemon means: start at the default cadence
       and let the adaptive policy re-derive it from measured
       wall-clock SAVE latency — there is no simulated T_save to
       compute a static floor from. *)
    let k, adaptive =
      match k with
      | None -> (8, adaptive)
      | Some `Auto -> (8, true)
      | Some (`Fixed v) -> (v, adaptive)
    in
    let cfg =
      {
        Daemon.role = (match role with `Send -> Daemon.Send | `Recv -> Daemon.Recv);
        bind = parse_addr "--bind" addr;
        peer = parse_addr "--peer" peer;
        secret;
        spi_base;
        sas;
        k;
        adaptive;
        window;
        rate_pps = rate;
        duration;
        store_dir;
        stats_path;
        json_path;
        workers;
        expect_recovery;
        heartbeat;
        batch;
        rcvbuf;
        sndbuf;
        discipline;
        churn;
        impair;
        impair_seed;
        store_faults;
        fault_seed;
        handle_signals = graceful;
      }
    in
    match Daemon.run cfg with
    | code, rep ->
      if not quiet then print_endline (Resets_util.Json.to_string_pretty rep);
      code
    | exception Invalid_argument msg ->
      Printf.eprintf "serve: %s\n%!" msg;
      1
  in
  let role =
    Arg.(
      required
      & opt (some (enum [ ("send", `Send); ("recv", `Recv) ])) None
      & info [ "role" ] ~docv:"ROLE"
          ~doc:"Which process to run: $(b,send) (p) or $(b,recv) (q).")
  in
  let addr =
    Arg.(
      value
      & opt (some string) None
      & info [ "bind" ] ~docv:"ADDR"
          ~doc:
            "Local address to receive on: $(b,udp:HOST:PORT) or \
             $(b,unix:PATH). Required for --role recv.")
  in
  let peer =
    Arg.(
      value
      & opt (some string) None
      & info [ "peer" ] ~docv:"ADDR"
          ~doc:"Peer address to send to (same syntax). Required for --role send.")
  in
  let secret =
    Arg.(
      value
      & opt string "wire-shared-secret"
      & info [ "secret" ] ~docv:"S"
          ~doc:"Shared secret both daemons derive SA keys from (no wire IKE).")
  in
  let spi_base =
    Arg.(
      value & opt int 0x5000 & info [ "spi-base" ] ~docv:"N" ~doc:"First SPI.")
  in
  let sas =
    Arg.(
      value
      & opt positive_int_conv 1
      & info [ "sas" ] ~docv:"N" ~doc:"Number of SAs (SPIs spi-base..+N-1).")
  in
  let k =
    Arg.(
      value
      & opt (some k_auto_conv) None
      & info [ "k" ] ~docv:"K"
          ~doc:
            "SAVE every K messages (default 8); wakeup leap is 2K. $(b,auto) \
             starts at the default and lets the adaptive policy re-derive the \
             cadence from measured SAVE latency (implies --adaptive).")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Re-derive each SA's SAVE cadence online from wall-clock SAVE \
             latency and inter-send gaps; the recovery gate's leap bound \
             widens to the policy ceiling.")
  in
  let window =
    Arg.(
      value & opt positive_int_conv 64
      & info [ "window" ] ~docv:"W" ~doc:"Replay window width.")
  in
  let rate =
    Arg.(
      value & opt float 200.
      & info [ "rate" ] ~docv:"PPS" ~doc:"Send rate per SA, packets/second.")
  in
  let duration =
    Arg.(
      value & opt float 3.
      & info [ "duration" ] ~docv:"S" ~doc:"Wall-clock run time in seconds.")
  in
  let store_dir =
    Arg.(
      value
      & opt string "/tmp/resets-store"
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "File store directory. Keys already present are recovered from \
             (FETCH + leap + blocking SAVE) instead of re-established.")
  in
  let stats_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Append heartbeat JSONL here; on restart the previous \
             incarnation's last line seeds the cross-incarnation replay \
             check.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the final report to $(docv).")
  in
  let workers =
    Arg.(
      value & opt positive_int_conv 1
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains (SAs sharded by SPI).")
  in
  let expect_recovery =
    Arg.(
      value & flag
      & info [ "expect-recovery" ]
          ~doc:
            "Gate the exit code on post-restart convergence (recv role): \
             stored edge recovered, deliveries resumed, at most 2K fresh \
             rejections, no duplicates, no cross-incarnation replay. Exit 2 \
             on violation.")
  in
  let heartbeat =
    Arg.(
      value & opt float 0.25
      & info [ "heartbeat" ] ~docv:"S" ~doc:"Heartbeat period in seconds.")
  in
  let batch =
    Arg.(
      value
      & opt positive_int_conv Resets_net_stubs.Batch_io.default_batch
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Wire batch size: datagrams per recvmmsg/sendmmsg syscall (rx \
             arena slots / tx pool depth). 1 disables batching — one syscall \
             per frame, synchronous send errors.")
  in
  let rcvbuf =
    Arg.(
      value
      & opt (some positive_int_conv) None
      & info [ "rcvbuf" ] ~docv:"BYTES"
          ~doc:
            "Request an explicit SO_RCVBUF; the effective (kernel-granted) \
             size is reported in the startup heartbeat.")
  in
  let sndbuf =
    Arg.(
      value
      & opt (some positive_int_conv) None
      & info [ "sndbuf" ] ~docv:"BYTES"
          ~doc:
            "Request an explicit SO_SNDBUF; the effective (kernel-granted) \
             size is reported in the startup heartbeat.")
  in
  let discipline =
    Arg.(
      value
      & opt
          (enum
             [
               ("per-sa", Resets_net.Daemon.Per_sa);
               ("coalesced", Resets_net.Daemon.Coalesced);
               ("reestablish", Resets_net.Daemon.Reestablish);
             ])
          Resets_net.Daemon.Per_sa
      & info [ "discipline" ] ~docv:"D"
          ~doc:
            "Recovery discipline: $(b,per-sa) (one store key per SA), \
             $(b,coalesced) (one snapshot file per worker, all SAs recovered \
             together), or $(b,reestablish) (ignore stored state, fresh \
             sequence space).")
  in
  let churn =
    Arg.(
      value
      & opt
          (enum
             [
               ("steady", Resets_net.Daemon.Steady);
               ("storm", Resets_net.Daemon.Storm);
               ("mixed", Resets_net.Daemon.Mixed);
             ])
          Resets_net.Daemon.Steady
      & info [ "churn" ] ~docv:"C"
          ~doc:
            "Background traffic shape: $(b,steady) constant spacing, \
             $(b,storm) bursty on/off (the wire-level rekey-storm analogue), \
             $(b,mixed) alternating by SA.")
  in
  let impair_conv =
    let parse s =
      match Resets_core.Impair.spec_of_string s with
      | Ok spec -> Ok spec
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv
      (parse, fun fmt s -> Format.pp_print_string fmt (Resets_core.Impair.spec_to_string s))
  in
  let impair =
    Arg.(
      value
      & opt impair_conv Resets_core.Impair.none
      & info [ "impair" ] ~docv:"SPEC"
          ~doc:
            "Deterministic wire impairment on the send path, e.g. \
             $(b,drop=0.05,dup=0.01,reorder=0.02,delay=0.01:4,ge=0.01:0.2:0.9) \
             (ge = Gilbert-Elliott enter:exit:drop burst loss).")
  in
  let impair_seed =
    Arg.(
      value & opt int 1
      & info [ "impair-seed" ] ~docv:"N"
          ~doc:"PRNG root for the impairment (and churn) streams.")
  in
  let faults_conv =
    let parse s =
      match Resets_persist.Faults.spec_of_string s with
      | Ok spec -> Ok spec
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv
      ( parse,
        fun fmt s ->
          Format.pp_print_string fmt (Resets_persist.Faults.spec_to_string s) )
  in
  let store_faults =
    Arg.(
      value
      & opt faults_conv Resets_persist.Faults.none
      & info [ "store-faults" ] ~docv:"SPEC"
          ~doc:
            "Deterministic file-store fault plan, e.g. \
             $(b,write_fail=0.05,torn=0.02,corrupt=0.01,stale=0.01): transient \
             write failures, aborted renames, corrupt/stale checked reads.")
  in
  let fault_seed =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"N"
          ~doc:"PRNG root for the store-fault plan (keyed per worker).")
  in
  let graceful =
    Arg.(
      value & flag
      & info [ "graceful" ]
          ~doc:
            "Handle SIGTERM as a graceful stop: finish with a final blocking \
             SAVE of every SA's freshest counter and a terminal heartbeat \
             (reason sigterm) instead of dying mid-write.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Do not print the final report.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run one side of the association as a real daemon: ESP datagrams \
          over UDP or UNIX sockets, sequence state in a file store under the \
          SAVE/FETCH k-rule. Kill it and restart on the same store to run \
          the paper's reset experiment on real processes.")
    Term.(
      const go $ role $ addr $ peer $ secret $ spi_base $ sas $ k $ adaptive
      $ window $ rate $ duration $ store_dir $ stats_path $ json_path
      $ workers $ expect_recovery $ heartbeat $ batch $ rcvbuf $ sndbuf
      $ discipline $ churn $ impair $ impair_seed $ store_faults $ fault_seed
      $ graceful $ quiet)

(* ------------------------------------------------------------------ *)
(* fleet: the E17 reboot-convergence scenario matrix *)

let fleet_cmd =
  let open Resets_fleet in
  let go smoke json_out workdir bin repeats seed quiet =
    let params0 = if smoke then Matrix.smoke_params else Matrix.full_params in
    let params = { params0 with Matrix.repeats; seed } in
    let cells = if smoke then Matrix.smoke_cells else Matrix.full_cells in
    let bin = match bin with Some b -> b | None -> Sys.executable_name in
    let log msg = if not quiet then Format.printf "[fleet] %s@." msg in
    let report, ok =
      Matrix.run ~bin ~workdir ~log ~cells ~params ~kill_modes:(not smoke)
        ~faulty:(not smoke) ()
    in
    (match json_out with
    | Some path ->
      Resets_util.Json.write_file path report;
      if not quiet then Format.printf "[fleet] wrote %s@." path
    | None -> print_endline (Resets_util.Json.to_string_pretty report));
    if not quiet then
      Format.printf "[fleet] %s@." (if ok then "all gates held" else "FAILED");
    if ok then 0 else 2
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Small matrix: one cell per reset scope, short durations, no \
             kill-mode probes or faulty cells — the check.sh gate.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full report to $(docv).")
  in
  let workdir =
    Arg.(
      value
      & opt string "/tmp/resets-fleet"
      & info [ "workdir" ] ~docv:"DIR"
          ~doc:
            "Scratch directory: one subdirectory per cell (sockets, stores, \
             heartbeats, daemon logs), left in place for inspection.")
  in
  let bin =
    Arg.(
      value
      & opt (some string) None
      & info [ "bin" ] ~docv:"PATH"
          ~doc:
            "The ipsec-resets executable whose $(b,serve) verb runs the \
             daemons (default: this executable).")
  in
  let repeats =
    Arg.(
      value & opt int 1
      & info [ "repeats" ] ~docv:"N" ~doc:"Repeats per cell.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Root seed for impairment and fault plans.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No per-cell progress output.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run the E17 reboot-convergence matrix: a fault-injecting \
          supervisor crosses reset scope (single SA / whole SADB / \
          disk-lost cold start) x recovery discipline (per-SA / coalesced \
          / re-establish) x background churn over real daemon pairs, \
          measuring messages lost and time-to-converged per cell against \
          the 2k bound from heartbeats alone. Exit 0 when every gate \
          holds, 2 otherwise (matching serve --expect-recovery).")
    Term.(
      const go $ smoke $ json_out $ workdir $ bin $ repeats $ seed $ quiet)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let go horizon trace_out =
    let scenario =
      {
        Harness.default with
        horizon = time_of_ms horizon;
        message_gap = Time.of_us 400;
        protocol = Protocol.save_fetch ~kp:5 ~kq:5 ();
        resets = Reset_schedule.single ~at:(time_of_ms (horizon /. 2.)) Receiver;
        keep_trace = true;
      }
    in
    let result = Harness.run scenario in
    (match result.Harness.trace with
    | Some trace -> (
      match trace_out with
      | Some path ->
        write_trace_jsonl path trace;
        Format.printf "wrote %d events to %s@." (List.length (Trace.entries trace))
          path
      | None -> Trace.dump Format.std_formatter trace)
    | None -> ());
    Format.printf "---@.%a@." Harness.pp_result result;
    0
  in
  let horizon =
    Arg.(value & opt float 10. & info [ "horizon" ] ~docv:"MS" ~doc:"Horizon (ms).")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a small scenario and dump the full event trace.")
    Term.(const go $ horizon $ trace_out_arg)

let () =
  let doc = "Convergence of IPsec in presence of resets — reproduction driver" in
  let info = Cmd.info "ipsec-resets" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_cmd; explore_cmd; bidir_cmd; multi_sa_cmd; rekey_cmd; kmin_cmd;
            chaos_cmd; serve_cmd; fleet_cmd; trace_cmd;
          ]))
